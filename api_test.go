package atgis

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"atgis/internal/geom"
	"atgis/internal/query"
	"atgis/internal/synth"
)

// writeTempGeoJSON generates a synthetic GeoJSON file on disk.
func writeTempGeoJSON(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.geojson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	g := synth.New(synth.Config{Seed: 12345, N: n, MultiPolyFrac: 0.15, LineFrac: 0.15, MetadataBytes: 40})
	if err := g.WriteGeoJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMappedLifecycle(t *testing.T) {
	path := writeTempGeoJSON(t, 100)
	src, err := OpenMapped(path, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	if src.DataFormat() != GeoJSON {
		t.Fatalf("format = %v, want geojson", src.DataFormat())
	}
	if len(src.Bytes()) == 0 {
		t.Fatal("empty mapping")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(src.Bytes())) != st.Size() {
		t.Fatalf("mapped %d bytes, file is %d", len(src.Bytes()), st.Size())
	}

	// Queries over the mapping produce the same result as the in-memory
	// source.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := FromBytes(data, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	spec := aggSpec()
	rm, err := defaultEngine.Query(context.Background(), src, spec, Options{Workers: 2, BlockSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := defaultEngine.Query(context.Background(), mem, spec, Options{Workers: 2, BlockSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Res.Count != rb.Res.Count || rm.Res.Scanned != rb.Res.Scanned || rm.Res.SumArea != rb.Res.SumArea {
		t.Fatalf("mmap result %+v != in-memory %+v", rm.Res, rb.Res)
	}

	// Close is idempotent and releases the view.
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if src.Bytes() != nil {
		t.Fatal("Bytes() non-nil after Close")
	}

	// Empty files map to an empty, closeable source (explicit format:
	// nothing to detect from zero bytes).
	empty := filepath.Join(t.TempDir(), "empty.wkt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	es, err := OpenMapped(empty, WKT)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Bytes()) != 0 {
		t.Fatal("empty file mapped non-empty")
	}
	if err := es.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderSource(t *testing.T) {
	ds := genDataset(t, GeoJSON, 50)
	src, err := ReaderSource(bytes.NewReader(ds.Data), AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.DataFormat() != GeoJSON {
		t.Fatalf("format = %v", src.DataFormat())
	}
	res, err := defaultEngine.Query(context.Background(), src, aggSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Scanned != 50 {
		t.Fatalf("scanned = %d, want 50", res.Res.Scanned)
	}
}

// TestConcurrentExecuteSharedSource is the headline redesign invariant:
// one engine, one prepared query, one mmap-backed source, many
// goroutines executing concurrently — independent, correct results.
func TestConcurrentExecuteSharedSource(t *testing.T) {
	path := writeTempGeoJSON(t, 400)
	src, err := OpenMapped(path, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	eng := NewEngine(EngineConfig{Workers: 4})
	defer eng.Close()
	pq, err := eng.Prepare(aggSpec(), Options{BlockSize: 4096, Mode: FAT})
	if err != nil {
		t.Fatal(err)
	}

	// Reference result, sequentially.
	want, err := pq.Execute(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if want.Res.Count == 0 {
		t.Fatal("no matches in reference run")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]*Result, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pq.Execute(context.Background(), src)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		r := results[i]
		if r.Res.Count != want.Res.Count || r.Res.Scanned != want.Res.Scanned ||
			r.Res.SumArea != want.Res.SumArea || r.Res.SumPerimeter != want.Res.SumPerimeter {
			t.Fatalf("goroutine %d: result %+v != reference %+v", i, r.Res, want.Res)
		}
	}
}

// TestCancelOneOfTwoQueries cancels one of two concurrent executions of
// the same prepared query; the cancelled one stops with ctx's error,
// the other completes with a correct result.
func TestCancelOneOfTwoQueries(t *testing.T) {
	path := writeTempGeoJSON(t, 2000)
	src, err := OpenMapped(path, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	eng := NewEngine(EngineConfig{Workers: 4})
	defer eng.Close()
	// Tiny blocks so the cancelled stream is reliably mid-pipeline when
	// it is abandoned.
	pq, err := eng.Prepare(&query.Spec{
		Kind: query.Containment,
		Ref:  geom.Box{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}.AsPolygon(),
		Pred: query.PredIntersects,
	}, Options{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Execute(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	var okRes *Result
	var okErr error
	go func() {
		defer wg.Done()
		okRes, okErr = pq.Execute(context.Background(), src)
	}()
	var cancelled error
	go func() {
		defer wg.Done()
		// Stream with a full-backpressure consumer: read one match, then
		// abandon — the producer pipeline must stop, not run to the end.
		res := pq.Stream(context.Background(), src)
		if !res.Next() {
			cancelled = fmt.Errorf("stream produced nothing: %v", res.Err())
			return
		}
		if err := res.Close(); err != nil {
			cancelled = err
			return
		}
		if _, err := res.Summary(); err == nil {
			cancelled = fmt.Errorf("abandoned stream reported a complete summary")
		}
	}()
	wg.Wait()
	if okErr != nil {
		t.Fatalf("unaffected query failed: %v", okErr)
	}
	if cancelled != nil {
		t.Fatal(cancelled)
	}
	if okRes.Res.Count != want.Res.Count || okRes.Res.Scanned != want.Res.Scanned {
		t.Fatalf("unaffected query result %+v != reference %+v", okRes.Res, want.Res)
	}
}

// TestCancelledContextNoGoroutineLeak runs many cancelled executions and
// asserts the process goroutine count returns to its baseline: cancelled
// pipelines must terminate their splitter and transient workers.
func TestCancelledContextNoGoroutineLeak(t *testing.T) {
	ds := genDataset(t, GeoJSON, 1000)
	pq, err := defaultEngine.Prepare(aggSpec(), Options{Workers: 4, BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		res := pq.Stream(ctx, ds)
		if res.Next() {
			// mid-stream: at least one block merged, pipeline running
		}
		cancel()
		res.Close()
	}
	// Also: context cancelled before Execute even starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pq.Execute(ctx, ds); err == nil {
		t.Fatal("Execute with cancelled context returned nil error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // helps finalize pipeline goroutines promptly
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamMatchesBufferedQuery checks the streaming iterator yields
// exactly the KeepMatches result set, in input order, and the terminal
// summary agrees with the blocking execution.
func TestStreamMatchesBufferedQuery(t *testing.T) {
	for _, mode := range []Mode{PAT, FAT} {
		ds := genDataset(t, GeoJSON, 300)
		spec := aggSpec()
		spec.KeepMatches = true
		buffered, err := ds.Query(spec, Options{Mode: mode, Workers: 2, BlockSize: 4096})
		if err != nil {
			t.Fatal(err)
		}

		streamSpec := aggSpec() // no KeepMatches: nothing buffers
		pq, err := defaultEngine.Prepare(streamSpec, Options{Mode: mode, Workers: 2, BlockSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		res := pq.Stream(context.Background(), ds)
		var offsets []int64
		for res.Next() {
			offsets = append(offsets, res.Feature().Offset)
			if !res.Value().Matched {
				t.Fatal("stream yielded an unmatched feature")
			}
		}
		sum, err := res.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Res.Matches) != 0 {
			t.Fatalf("%v: streaming run buffered %d matches", mode, len(sum.Res.Matches))
		}
		if len(offsets) != len(buffered.Res.Matches) {
			t.Fatalf("%v: streamed %d matches, buffered %d", mode, len(offsets), len(buffered.Res.Matches))
		}
		for i, m := range buffered.Res.Matches {
			if offsets[i] != m.Offset {
				t.Fatalf("%v: match %d offset %d != %d (stream must be in input order)", mode, i, offsets[i], m.Offset)
			}
		}
		if sum.Res.Count != buffered.Res.Count || sum.Res.SumArea != buffered.Res.SumArea {
			t.Fatalf("%v: summary %+v != buffered %+v", mode, sum.Res, buffered.Res)
		}
	}
}

// TestJoinStreamMatchesJoin checks the streaming join yields exactly the
// buffered join's deduplicated pair set.
func TestJoinStreamMatchesJoin(t *testing.T) {
	ds := genDataset(t, WKT, 200)
	// Self-join: the synthetic features overlap rarely at this scale,
	// but every feature intersects itself, so the compared pair sets
	// are guaranteed non-empty.
	mask := func(*geom.Feature) uint8 { return query.SideA | query.SideB }
	spec := JoinSpec{Mask: mask, CellSize: 15}
	jr, err := ds.Join(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.Pairs) == 0 {
		t.Fatal("buffered join found no pairs; bad test data")
	}
	want := make(map[[2]int64]bool, len(jr.Pairs))
	for _, p := range jr.Pairs {
		want[[2]int64{p.AOff, p.BOff}] = true
	}

	stream := defaultEngine.JoinStream(context.Background(), ds, spec, Options{Workers: 2})
	got := make(map[[2]int64]bool)
	for stream.Next() {
		p := stream.Pair()
		k := [2]int64{p.AOff, p.BOff}
		if got[k] {
			t.Fatalf("duplicate pair streamed: %+v", p)
		}
		got[k] = true
	}
	if _, err := stream.Summary(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d pairs, buffered join has %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("pair %v missing from stream", k)
		}
	}
}

func TestEngineClose(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	ds := genDataset(t, GeoJSON, 20)
	if _, err := eng.Query(context.Background(), ds, aggSpec(), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := eng.Query(context.Background(), ds, aggSpec(), Options{}); err != ErrEngineClosed {
		t.Fatalf("query on closed engine: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Prepare(aggSpec(), Options{}); err != ErrEngineClosed {
		t.Fatalf("prepare on closed engine: %v, want ErrEngineClosed", err)
	}
}

func TestPrepareRejectsJoinKinds(t *testing.T) {
	if _, err := defaultEngine.Prepare(&query.Spec{Kind: query.Join}, Options{}); err == nil {
		t.Fatal("preparing a join spec should fail")
	}
	if _, err := defaultEngine.Prepare(nil, Options{}); err == nil {
		t.Fatal("preparing a nil spec should fail")
	}
}

func TestDetectBareWKT(t *testing.T) {
	cases := []struct {
		data []byte
		want Format
	}{
		{[]byte("POINT (1 2)\n"), WKT},
		{[]byte("  \n\tPOLYGON ((0 0, 1 0, 1 1, 0 0))\n"), WKT},
		{[]byte("LINESTRING (0 0, 1 1)\n"), WKT},
		{[]byte("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))\n"), WKT},
		{[]byte("GEOMETRYCOLLECTION (POINT (1 2))\n"), WKT},
		{[]byte("POINTER (1 2)\n"), AutoDetect}, // keyword must end at a non-letter
		{[]byte("FOO (1 2)\n"), AutoDetect},
	}
	for _, tc := range cases {
		if got := DetectFormat(tc.data); got != tc.want {
			t.Errorf("DetectFormat(%q) = %v, want %v", tc.data, got, tc.want)
		}
	}

	// Bare WKT lines parse end-to-end, not just detect.
	src, err := FromBytes([]byte("POINT (10 10)\nPOLYGON ((0 0, 20 0, 20 20, 0 20, 0 0))\n"), AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	res, err := src.Query(&query.Spec{
		Kind: query.Containment,
		Ref:  geom.Box{MinX: -1, MinY: -1, MaxX: 30, MaxY: 30}.AsPolygon(),
		Pred: query.PredIntersects,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Scanned != 2 || res.Res.Count != 2 {
		t.Fatalf("bare WKT query scanned=%d count=%d, want 2/2", res.Res.Scanned, res.Res.Count)
	}

	// Detection failure names the supported formats.
	_, err = FromBytes([]byte("???"), AutoDetect)
	if err == nil {
		t.Fatal("undetectable input should error")
	}
	for _, word := range []string{"GeoJSON", "WKT", "OSM XML", "POINT"} {
		if !strings.Contains(err.Error(), word) {
			t.Errorf("detection error %q does not mention %s", err, word)
		}
	}
}

// TestSummaryWithoutDraining calls Summary/Err immediately, without
// iterating: the stream must discard unconsumed items and complete the
// pass instead of deadlocking on its own backpressure (the channel
// buffer is far smaller than the match count).
func TestSummaryWithoutDraining(t *testing.T) {
	ds := genDataset(t, GeoJSON, 500)
	spec := aggSpec() // matches >> the 64-item stream buffer
	want, err := ds.Query(spec, Options{Workers: 2, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := defaultEngine.Prepare(spec, Options{Workers: 2, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var sum *Result
	go func() {
		defer close(done)
		var serr error
		sum, serr = pq.Stream(context.Background(), ds).Summary()
		if serr != nil {
			t.Error(serr)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Summary() deadlocked on an undrained stream")
	}
	if sum.Res.Count != want.Res.Count || sum.Res.Scanned != want.Res.Scanned {
		t.Fatalf("summary %+v != buffered %+v", sum.Res, want.Res)
	}

	// Same for the join pair stream.
	dsw := genDataset(t, WKT, 200)
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	jdone := make(chan struct{})
	go func() {
		defer close(jdone)
		if _, err := defaultEngine.JoinStream(context.Background(), dsw,
			JoinSpec{Mask: mask, CellSize: 15}, Options{Workers: 2}).Summary(); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-jdone:
	case <-time.After(10 * time.Second):
		t.Fatal("JoinPairs.Summary() deadlocked on an undrained stream")
	}
}

// TestPooledEngineJoin runs joins on an engine with a shared pool (the
// sweep workers occupy pool slots via join.Config.Go) and checks the
// results match the pool-less path, including under concurrency.
func TestPooledEngineJoin(t *testing.T) {
	ds := genDataset(t, WKT, 200)
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	spec := JoinSpec{Mask: mask, CellSize: 15}
	want, err := ds.Join(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(EngineConfig{Workers: 2})
	defer eng.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jr, err := eng.Join(context.Background(), ds, spec, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if len(jr.Pairs) != len(want.Pairs) {
				t.Errorf("pooled join: %d pairs, want %d", len(jr.Pairs), len(want.Pairs))
			}
		}()
	}
	wg.Wait()

	// Streaming flavour on the pooled engine.
	pairs := eng.JoinStream(context.Background(), ds, spec, Options{})
	n := 0
	for pairs.Next() {
		n++
	}
	if err := pairs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(want.Pairs) {
		t.Fatalf("pooled stream: %d pairs, want %d", n, len(want.Pairs))
	}
}

// TestEngineSchedulerStats checks the weighted block-dispatch scheduler
// surfaces through Engine.Stats: a pass registered under a tenant is
// visible (with its configured weight) while it runs, its entry is
// released when the pass deregisters, and the pool's lifetime grant
// counter advances.
func TestEngineSchedulerStats(t *testing.T) {
	ds := genDataset(t, GeoJSON, 2000)
	eng := NewEngine(EngineConfig{Workers: 2, TenantWeights: map[string]int{"gold": 3}})
	defer eng.Close()

	st := eng.Stats()
	if st.Scheduler == nil {
		t.Fatal("pooled engine reports no scheduler stats")
	}
	if st.Scheduler.TotalGrantedBlocks != 0 || len(st.Scheduler.Tenants) != 0 {
		t.Fatalf("idle scheduler stats = %+v", st.Scheduler)
	}

	// A streaming pass with an unconsumed iterator blocks mid-pass on
	// backpressure (the dataset matches far more features than the
	// stream's 64-slot buffer), holding its scheduler registration live
	// for inspection.
	pq, err := eng.Prepare(aggSpec(), Options{BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	res := pq.Stream(WithTenant(context.Background(), "gold"), ds)
	var live SchedulerTenantStats
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ts, ok := eng.Stats().Scheduler.Tenants["gold"]; ok {
			live = ts
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant never appeared in scheduler stats while its pass ran")
		}
		time.Sleep(time.Millisecond)
	}
	if live.Weight != 3 || live.Passes < 1 {
		t.Fatalf("live tenant stats = %+v, want weight 3 with a registered pass", live)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}

	after := eng.Stats()
	if after.Scheduler.TotalGrantedBlocks == 0 {
		t.Fatal("no blocks were granted through the scheduler")
	}
	if len(after.Scheduler.Tenants) != 0 {
		t.Fatalf("tenant entries leaked after pass completion: %+v", after.Scheduler.Tenants)
	}
}

// TestJoinStreamOrdered: JoinSpec.OrderWindow makes the streamed pair
// sequence deterministic across runs while preserving the exact pair
// set of the unordered stream.
func TestJoinStreamOrdered(t *testing.T) {
	ds := genDataset(t, WKT, 400)
	// Self-join mask: the synthetic features overlap rarely, but every
	// feature intersects itself, so each occupied cell owns pairs and
	// the reorder machinery has real work.
	mask := func(*geom.Feature) uint8 { return query.SideA | query.SideB }
	eng := NewEngine(EngineConfig{Workers: 4})
	defer eng.Close()

	collect := func(spec JoinSpec) []int64 {
		stream := eng.JoinStream(context.Background(), ds, spec, Options{BlockSize: 4096})
		var seq []int64
		for stream.Next() {
			p := stream.Pair()
			seq = append(seq, p.AOff, p.BOff)
		}
		if err := stream.Err(); err != nil {
			t.Fatal(err)
		}
		return seq
	}

	// Tiny batches so many tasks complete out of order and the
	// sequencer actually has to reorder.
	ordered := JoinSpec{Mask: mask, CellSize: 5, BatchCells: 2, OrderWindow: 16}
	first := collect(ordered)
	if len(first) == 0 {
		t.Fatal("ordered join stream found no pairs")
	}
	for run := 0; run < 2; run++ {
		again := collect(ordered)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d values, want %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d diverged at %d: ordered stream must be deterministic", run, i)
			}
		}
	}

	// Same pair multiset as the unordered stream.
	unordered := collect(JoinSpec{Mask: mask, CellSize: 5})
	if len(unordered) != len(first) {
		t.Fatalf("ordered stream has %d values, unordered %d", len(first), len(unordered))
	}
	seen := make(map[[2]int64]bool, len(first)/2)
	for i := 0; i < len(first); i += 2 {
		seen[[2]int64{first[i], first[i+1]}] = true
	}
	for i := 0; i < len(unordered); i += 2 {
		if !seen[[2]int64{unordered[i], unordered[i+1]}] {
			t.Fatalf("pair (%d,%d) missing from ordered stream", unordered[i], unordered[i+1])
		}
	}
}

// TestJoinStreamCloseFreesPool: abandoning one of two concurrent join
// streams on a pooled engine mid-iteration must not disturb the other
// join, and afterwards the pool must be idle with no scheduler entries
// or goroutines left behind — the engine-level half of the preemption
// story (the join-level half lives in internal/join).
func TestJoinStreamCloseFreesPool(t *testing.T) {
	ds := genDataset(t, WKT, 400)
	mask := func(*geom.Feature) uint8 { return query.SideA | query.SideB }
	// Fine cells + tiny batches: plenty of cell-batch quanta to abandon
	// between.
	spec := JoinSpec{Mask: mask, CellSize: 2, BatchCells: 4}
	eng := NewEngine(EngineConfig{Workers: 2, TenantWeights: map[string]int{"keeper": 3}})
	defer eng.Close()

	want, err := ds.Join(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	abandoned := eng.JoinStream(WithTenant(context.Background(), "quitter"), ds, spec, Options{})
	var survived int
	done := make(chan struct{})
	go func() {
		defer close(done)
		keeper := eng.JoinStream(WithTenant(context.Background(), "keeper"), ds, spec, Options{})
		for keeper.Next() {
			survived++
		}
		if err := keeper.Err(); err != nil {
			t.Error(err)
		}
	}()
	if abandoned.Next() { // at least one pair in flight, then walk away
		if err := abandoned.Close(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if survived != len(want.Pairs) {
		t.Fatalf("surviving join streamed %d pairs, want %d", survived, len(want.Pairs))
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Stats()
		if st.Pool.Busy == 0 && len(st.Scheduler.Tenants) == 0 &&
			runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine not quiesced: busy=%d tenants=%v goroutines=%d (baseline %d)",
				st.Pool.Busy, st.Scheduler.Tenants, runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := eng.Stats(); st.Scheduler.TotalGrantedCellBatches == 0 {
		t.Fatal("no cell batches were granted through the scheduler")
	}
}
