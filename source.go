package atgis

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// Format identifies the raw input format.
type Format uint8

// Supported input formats.
const (
	AutoDetect Format = iota
	GeoJSON
	WKT
	OSMXML
)

func (f Format) String() string {
	switch f {
	case GeoJSON:
		return "geojson"
	case WKT:
		return "wkt"
	case OSMXML:
		return "osmxml"
	default:
		return "auto"
	}
}

// Source is an open raw spatial dataset: a byte view of the input plus
// its format and lifecycle. Queries execute directly against the bytes
// with no loading or indexing phase, so a Source open is O(1) — the
// work happens per query.
//
// Implementations: OpenMapped returns a memory-mapped file view (cold
// start and resident memory independent of file size), FromBytes wraps
// an in-memory buffer, and ReaderSource buffers piped input. A Source
// is safe for any number of concurrent queries; Close must only be
// called once no query is in flight.
//
// # mmap vs reader-backed sources
//
// The two ways of opening a file trade off differently and the
// difference matters once a source is held open for repeated queries
// (a PreparedQuery registry, the atgis-serve source table):
//
//   - OpenMapped maps the file into the address space: opening is O(1)
//     regardless of size, the kernel pages bytes in on first touch and
//     can evict them under memory pressure, the page cache is shared
//     with every other process reading the file, and the mapping is
//     advised MADV_SEQUENTIAL on Linux so read-ahead matches the
//     scan-heavy access pattern of a query pass.
//   - ReaderSource copies the entire stream into one Go heap
//     allocation before the first query can run: opening is O(bytes),
//     the copy is unevictable (it counts fully against resident memory
//     and GC scanning roots), nothing is shared with other processes,
//     and no madvise-style hinting applies — the kernel never sees the
//     access pattern because the pages are anonymous.
//
// ReaderSource is therefore the right tool only for input that cannot
// be mapped (pipes, sockets, stdin) and for one-shot use. Long-lived
// registries should reject it — CheckReusable returns the typed
// ErrBufferedSource for reader-backed sources so callers can steer
// users to OpenMapped.
type Source interface {
	// Bytes returns the raw input. Callers must not modify or retain it
	// past Close.
	Bytes() []byte
	// DataFormat reports the detected or declared input format.
	DataFormat() Format
	// Close releases the underlying view (unmaps files, frees buffers).
	Close() error
}

// Dataset is a raw spatial input held in memory. It implements Source
// and also carries the original one-shot query methods (Query, Join,
// Combined), which remain as thin wrappers over a default Engine.
//
// Deprecated: new code should open inputs through OpenMapped, FromBytes
// or ReaderSource and run queries through an Engine and PreparedQuery.
type Dataset struct {
	Data   []byte
	Format Format
}

// Bytes implements Source.
func (d *Dataset) Bytes() []byte { return d.Data }

// DataFormat implements Source.
func (d *Dataset) DataFormat() Format { return d.Format }

// Close implements Source; in-memory datasets hold no resources.
func (d *Dataset) Close() error { return nil }

// Open loads a dataset file into memory, detecting the format from its
// content when format is AutoDetect.
//
// Deprecated: use OpenMapped, which maps the file instead of copying it
// into the heap.
func Open(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(data, AutoDetect)
}

// FromBytes wraps an in-memory dataset as a Source.
func FromBytes(data []byte, format Format) (*Dataset, error) {
	if format == AutoDetect {
		format = DetectFormat(data)
	}
	if format == AutoDetect {
		return nil, errUnknownFormat(data)
	}
	return &Dataset{Data: data, Format: format}, nil
}

// ReaderSource buffers r fully in memory and wraps it as a Source, for
// piped or otherwise unseekable input that cannot be memory-mapped.
// format may be AutoDetect.
//
// The buffer lives on the Go heap: unlike OpenMapped's page-cache-backed
// view it is unevictable, unshared and receives no kernel read-ahead
// hinting (see the Source doc for the full trade-off). Use it for
// one-shot queries over pipes; CheckReusable reports ErrBufferedSource
// for sources opened this way, and registries meant for repeated
// prepared-query reuse should refuse them.
func ReaderSource(r io.Reader, format Format) (Source, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ds, err := FromBytes(data, format)
	if err != nil {
		return nil, err
	}
	return &bufferedSource{Dataset: *ds}, nil
}

// bufferedSource marks a Source whose bytes were copied from a stream
// onto the Go heap (ReaderSource), distinguishing it from deliberate
// in-memory datasets (FromBytes) and kernel-managed mappings
// (OpenMapped) so CheckReusable can identify it.
type bufferedSource struct {
	Dataset
}

// ErrBufferedSource is the sentinel (matched with errors.Is) returned
// by CheckReusable for reader-backed sources: their heap copy is
// unevictable and unhinted, so holding one open for repeated
// prepared-query reuse wastes memory that OpenMapped would leave to the
// page cache.
var ErrBufferedSource = errors.New("atgis: reader-backed source is heap-buffered")

// CheckReusable reports whether src suits long-lived registration for
// repeated prepared-query reuse. It returns an error matching
// ErrBufferedSource when src was opened with ReaderSource — callers
// registering sources (for example the atgis-serve source table) should
// surface it and require OpenMapped instead. Mapped and FromBytes
// sources pass.
func CheckReusable(src Source) error {
	if _, ok := src.(*bufferedSource); ok {
		return fmt.Errorf("%w; reopen the file with OpenMapped for repeated query reuse "+
			"(mapped pages are evictable, shared and sequential-read hinted)", ErrBufferedSource)
	}
	return nil
}

// MappedSource is a memory-mapped file view: the kernel pages input in
// on demand, so opening is O(1) and resident memory tracks the query's
// working set rather than the file size. Returned by OpenMapped.
type MappedSource struct {
	data   []byte
	format Format
	path   string
	unmap  func() error
	closed atomic.Bool

	// sc holds the per-mapping sidecar-index state (lazy-loaded index,
	// rejection reasons, hit/miss counters). It is only touched when a
	// sidecar-enabled Engine runs passes over this source.
	sc sidecarState
}

// OpenMapped maps the file at path read-only and detects its format
// when format is AutoDetect. The mapping is shared by all queries; call
// Close when no query is in flight to release it.
func OpenMapped(path string, format Format) (*MappedSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("atgis: mmap %s: %w", path, err)
	}
	if format == AutoDetect {
		format = DetectFormat(data)
	}
	if format == AutoDetect {
		err := errUnknownFormat(data)
		unmap()
		return nil, err
	}
	return &MappedSource{data: data, format: format, path: path, unmap: unmap}, nil
}

// Bytes implements Source.
func (s *MappedSource) Bytes() []byte { return s.data }

// DataFormat implements Source.
func (s *MappedSource) DataFormat() Format { return s.format }

// Path returns the mapped file's path.
func (s *MappedSource) Path() string { return s.path }

// Close unmaps the file. Closing is idempotent; queries must not be in
// flight (their byte view disappears with the mapping).
func (s *MappedSource) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.data = nil
	return s.unmap()
}

// wktKeywords are the geometry tags recognised at the start of a bare
// WKT line (no numeric id column).
var wktKeywords = [][]byte{
	[]byte("POINT"),
	[]byte("LINESTRING"),
	[]byte("POLYGON"),
	[]byte("MULTIPOINT"),
	[]byte("MULTILINESTRING"),
	[]byte("MULTIPOLYGON"),
	[]byte("GEOMETRYCOLLECTION"),
}

// hasWKTKeyword reports whether b starts with a WKT geometry keyword
// followed by a non-letter (so "POINTER..." does not match).
func hasWKTKeyword(b []byte) bool {
	for _, kw := range wktKeywords {
		if !bytes.HasPrefix(b, kw) {
			continue
		}
		if len(b) == len(kw) {
			return true
		}
		c := b[len(kw)]
		if !(c >= 'A' && c <= 'Z') && !(c >= 'a' && c <= 'z') {
			return true
		}
	}
	return false
}

// DetectFormat inspects the head of data and classifies it as GeoJSON,
// WKT or OSM XML, returning AutoDetect when no format matches.
func DetectFormat(data []byte) Format {
	head := data
	if len(head) > 512 {
		head = head[:512]
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	switch {
	case bytes.HasPrefix(trimmed, []byte("<?xml")), bytes.HasPrefix(trimmed, []byte("<osm")):
		return OSMXML
	case bytes.HasPrefix(trimmed, []byte("{")), bytes.HasPrefix(trimmed, []byte("[")):
		return GeoJSON
	case len(trimmed) > 0 && (trimmed[0] >= '0' && trimmed[0] <= '9' || trimmed[0] == '-'):
		return WKT
	case hasWKTKeyword(trimmed):
		return WKT
	default:
		return AutoDetect
	}
}

// errUnknownFormat builds the detection-failure error, naming the
// supported formats and what each looks like.
func errUnknownFormat(data []byte) error {
	head := data
	if len(head) > 24 {
		head = head[:24]
	}
	return fmt.Errorf("atgis: cannot detect input format from %.24q; supported formats: "+
		"GeoJSON (document starting with '{' or '['), "+
		"WKT (one feature per line, \"<id><TAB><GEOMETRY>\" or a bare "+
		"POINT/LINESTRING/POLYGON/MULTIPOLYGON/GEOMETRYCOLLECTION geometry), "+
		"OSM XML (starting with '<?xml' or '<osm')", head)
}
