package atgis

import (
	"context"
	"errors"
	"sync/atomic"

	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/pipeline"
	"atgis/internal/query"
)

// stream is the single-consumer iterator core shared by Results and
// JoinPairs: a bounded channel the producer fills (with backpressure), a
// terminal summary published before done closes, and Close/ctx
// cancellation that abandons the producer early.
type stream[T any, S any] struct {
	ch     chan T
	done   chan struct{}
	cancel context.CancelFunc
	closed atomic.Bool // cancellation came from Close, not the caller's ctx
	cur    T
	sum    S
	err    error
}

// init wires the channels and returns the producer's (cancellable)
// context.
func (s *stream[T, S]) init(ctx context.Context, buf int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	s.ch = make(chan T, buf)
	s.done = make(chan struct{})
	s.cancel = cancel
	return ctx
}

// finish publishes the terminal state; the producer must call it exactly
// once, after its last send.
func (s *stream[T, S]) finish(sum S, err error) {
	s.sum, s.err = sum, err
	close(s.ch)
	close(s.done)
	s.cancel()
}

// next advances the iterator.
func (s *stream[T, S]) next() bool {
	v, ok := <-s.ch
	if !ok {
		return false
	}
	s.cur = v
	return true
}

// wait blocks until the producer finished, discarding any items the
// consumer did not iterate — without this drain, a producer blocked on a
// full channel would never finish and Summary/Err would deadlock. The
// stream is single-consumer: wait must not race a concurrent next.
func (s *stream[T, S]) wait() {
	for range s.ch {
	}
	<-s.done
}

// summary returns the terminal summary and error after the producer
// finished (remaining unconsumed items are discarded, but the pass
// itself still completes so the summary covers the full input).
func (s *stream[T, S]) summary() (S, error) {
	s.wait()
	return s.sum, s.err
}

// terminalErr is summary's error half. Deliberate abandonment via close
// is not an error; cancellation of the caller's own context is (the
// stream is incomplete without the caller having asked for that).
func (s *stream[T, S]) terminalErr() error {
	s.wait()
	if s.closed.Load() && errors.Is(s.err, context.Canceled) {
		return nil
	}
	return s.err
}

// abandon cancels the producer and waits it out.
func (s *stream[T, S]) abandon() error {
	s.closed.Store(true)
	s.cancel()
	return s.terminalErr()
}

// Results streams the matching features of a prepared query as the
// pipeline produces them, in input order, instead of buffering the full
// result set:
//
//	res := pq.Stream(ctx, src)
//	for res.Next() {
//	        f := res.Feature()
//	        ...
//	}
//	sum, err := res.Summary()
//
// The iterator applies backpressure: a slow consumer slows the
// pipeline's ordered merge rather than growing a buffer. Close (or
// cancelling ctx) abandons the run early. Results is single-consumer;
// Summary and Err may be called once iteration stopped.
type Results struct {
	stream[StreamedFeature, *Result]
}

// StreamedFeature is one matched feature plus its per-feature outcome
// (aggregate contributions).
type StreamedFeature struct {
	Feature geom.Feature
	Val     query.FeatureVal
}

// Stream starts the prepared query over src and returns the streaming
// iterator over matching features. The underlying pipeline runs on the
// engine's workers; cancelling ctx or calling Close stops it without
// waiting for the full pass.
func (p *PreparedQuery) Stream(ctx context.Context, src Source) *Results {
	r := &Results{}
	ctx = r.init(ctx, 64)
	go func() {
		sum, err := p.run(ctx, src, func(f *geom.Feature, v query.FeatureVal) {
			if !v.Matched {
				return
			}
			select {
			case r.ch <- StreamedFeature{Feature: *f, Val: v}:
			case <-ctx.Done():
			}
		})
		r.finish(sum, err)
	}()
	return r
}

// Next advances to the next matching feature, blocking until one is
// available or the stream ends. It returns false when the pass is
// complete, failed, or was cancelled; check Err or Summary afterwards.
func (r *Results) Next() bool { return r.next() }

// Feature returns the current match. The pointer is valid until the
// next call to Next — copy the pointed-to value (its geometry and
// properties are not reused) to retain a match across iterations.
func (r *Results) Feature() *geom.Feature { return &r.cur.Feature }

// Value returns the current match's per-feature outcome.
func (r *Results) Value() query.FeatureVal { return r.cur.Val }

// Summary blocks until the pass finishes and returns the aggregate
// result (counts, sums, MBR, stats); matches not consumed via Next are
// discarded, but the aggregates still cover the whole input. When the
// stream was cancelled or failed, the error is returned and the summary
// is nil.
func (r *Results) Summary() (*Result, error) { return r.summary() }

// Err returns the terminal error of the stream, blocking until the pass
// finishes. Deliberate abandonment via Close is not an error;
// cancellation of the caller's own context is.
func (r *Results) Err() error { return r.terminalErr() }

// Close abandons the stream: the pipeline stops dispatching blocks and
// the remaining matches are discarded. Safe to call at any time, also
// after full consumption.
func (r *Results) Close() error { return r.abandon() }

// JoinPairs streams the result pairs of a spatial join as the join
// phase finds them (the partition phase still completes first — the
// join is two-pass by construction). Pairs are deduplicated on the fly
// with the reference-point method, so nothing is globally buffered or
// sorted; pair order is nondeterministic across runs unless
// JoinSpec.OrderWindow requests the windowed reorder, which emits pairs
// in deterministic partition-cell order at the cost of holding at most
// a window's worth of completed cell batches. Like Results, JoinPairs
// is single-consumer.
type JoinPairs struct {
	stream[join.Pair, *JoinResult]
}

// JoinStream starts the two-pass join over src and returns the
// streaming pair iterator. Unlike Engine.Join it does not buffer,
// sort or globally deduplicate the pair set; duplicates are suppressed
// per partition cell via the reference-point test. The sweep runs as
// cell-batch tasks on the engine's worker pool, so concurrent joins
// and queries interleave at the same scheduling quantum.
func (e *Engine) JoinStream(ctx context.Context, src Source, spec JoinSpec, opt Options) *JoinPairs {
	r := &JoinPairs{}
	ctx = r.init(ctx, 256)
	go func() {
		sum, err := e.joinStreamed(ctx, src, spec, opt, func(p join.Pair) {
			select {
			case r.ch <- p:
			case <-ctx.Done():
			}
		})
		r.finish(sum, err)
	}()
	return r
}

// joinStreamed is the JoinStream producer body: partition phase, then
// the streaming join sweep.
func (e *Engine) joinStreamed(ctx context.Context, src Source, spec JoinSpec, opt Options, emit func(join.Pair)) (*JoinResult, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	opt = e.opts(opt)
	merged, extent, stats, err := e.joinPartitionPhase(ctx, src, &spec, opt)
	if err != nil {
		return nil, err
	}
	reparse, err := e.reparser(ctx, src, opt)
	if err != nil {
		return nil, err
	}
	jcfg, done := e.joinConfig(ctx, &spec, opt, reparse, pipeline.SourceKey(src.Bytes()))
	jstats, err := join.RunStream(merged.Sets[0], merged.Sets[1], jcfg, emit)
	done()
	if err != nil {
		return nil, err
	}
	return &JoinResult{
		PartitionStats: stats,
		JoinStats:      jstats,
		Extent:         extent,
	}, nil
}

// Next advances to the next joined pair, blocking until one is found or
// the join ends.
func (r *JoinPairs) Next() bool { return r.next() }

// Pair returns the current joined pair (valid after Next returned true).
func (r *JoinPairs) Pair() join.Pair { return r.cur }

// Summary blocks until the join finishes and returns phase stats (its
// Pairs slice is nil — the pairs were streamed; unconsumed pairs are
// discarded).
func (r *JoinPairs) Summary() (*JoinResult, error) { return r.summary() }

// Err returns the terminal error, blocking until the join finishes.
// Deliberate abandonment via Close is not an error; cancellation of the
// caller's own context is.
func (r *JoinPairs) Err() error { return r.terminalErr() }

// Close abandons the stream and stops the join.
func (r *JoinPairs) Close() error { return r.abandon() }
