//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package atgis

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The returned release function unmaps; it
// is never nil. Empty files map to an empty, releasable view.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	// Queries stream the input front to back; tell the kernel so
	// readahead stays aggressive.
	_ = madviseSequential(data)
	return data, func() error { return syscall.Munmap(data) }, nil
}
