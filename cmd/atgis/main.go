// Command atgis runs spatial queries directly over raw GeoJSON, WKT or
// OSM XML files with no loading phase. Inputs are memory-mapped ("-"
// reads stdin), queries run on a shared engine, and Ctrl-C cancels the
// in-flight pipeline:
//
//	atgis -query aggregation -ref "-10,-10,10,10" data.geojson
//	atgis -query containment -mode fat -workers 8 data.geojson
//	atgis -query join -cell 1 data.wkt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"atgis"
	"atgis/internal/geom"
	"atgis/internal/query"
)

func parseBox(s string) (geom.Box, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Box{}, fmt.Errorf("ref must be minx,miny,maxx,maxy")
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Box{}, err
		}
		v[i] = f
	}
	return geom.Box{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

// openSource maps the input file, or buffers stdin for "-".
func openSource(path string) (atgis.Source, error) {
	if path == "-" {
		return atgis.ReaderSource(os.Stdin, atgis.AutoDetect)
	}
	return atgis.OpenMapped(path, atgis.AutoDetect)
}

func main() {
	queryKind := flag.String("query", "aggregation", "containment | aggregation | join")
	ref := flag.String("ref", "-45,-45,45,45", "reference box: minx,miny,maxx,maxy")
	mode := flag.String("mode", "pat", "pat | fat")
	workers := flag.Int("workers", 0, "worker threads (0 = NumCPU)")
	blockSize := flag.Int("block", 1<<20, "block size in bytes")
	cell := flag.Float64("cell", 1, "join partition cell size in degrees")
	distName := flag.String("dist", "haversine", "spherical | haversine | andoyer")
	filterMode := flag.String("filter", "streaming", "streaming | buffered")
	show := flag.Int("show", 0, "stream and print the first N matches/pairs")
	sidecarFlag := flag.String("sidecar", "off", "structural sidecar index: off | read | readwrite")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: atgis [flags] <datafile|->")
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C cancels the in-flight query pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	src, err := openSource(flag.Arg(0))
	fatal(err)
	defer src.Close()
	fmt.Printf("dataset: %s (%s, %.1f MB)\n", flag.Arg(0), src.DataFormat(), float64(len(src.Bytes()))/(1<<20))

	sidecarMode, err := atgis.ParseSidecarMode(*sidecarFlag)
	fatal(err)

	eng := atgis.NewEngine(atgis.EngineConfig{Workers: *workers, BlockSize: *blockSize, Sidecar: sidecarMode})
	defer eng.Close()

	opt := atgis.Options{Workers: *workers, BlockSize: *blockSize}
	if strings.EqualFold(*mode, "fat") {
		opt.Mode = atgis.FAT
	}
	box, err := parseBox(*ref)
	fatal(err)

	var dist geom.DistanceMethod
	switch strings.ToLower(*distName) {
	case "spherical":
		dist = geom.SphericalProjection
	case "andoyer":
		dist = geom.Andoyer
	default:
		dist = geom.Haversine
	}

	switch strings.ToLower(*queryKind) {
	case "containment":
		spec := &query.Spec{
			Kind: query.Containment, Ref: box.AsPolygon(),
			Pred: query.PredIntersects,
		}
		pq, err := eng.Prepare(spec, opt)
		fatal(err)
		// Stream matches instead of buffering the result set.
		res := pq.Stream(ctx, src)
		matched := 0
		for res.Next() {
			if matched < *show {
				f := res.Feature()
				fmt.Printf("  match id=%d offset=%d mbr=%+v\n", f.ID, f.Offset, f.Geom.Bound())
			}
			matched++
		}
		sum, err := res.Summary()
		fatal(err)
		fmt.Printf("matched %d of %d objects\n", matched, sum.Res.Scanned)
		printStats(sum)
	case "aggregation":
		spec := &query.Spec{
			Kind: query.Aggregation, Ref: box.AsPolygon(),
			Pred: query.PredIntersects, Dist: dist,
			WantArea: true, WantPerimeter: true, WantMBR: true,
		}
		if strings.EqualFold(*filterMode, "buffered") {
			spec.Mode = query.Buffered
		}
		pq, err := eng.Prepare(spec, opt)
		fatal(err)
		res, err := pq.Execute(ctx, src)
		fatal(err)
		fmt.Printf("matched %d of %d objects\n", res.Res.Count, res.Res.Scanned)
		fmt.Printf("total area: %.3f km²\n", res.Res.SumArea/1e6)
		fmt.Printf("total perimeter: %.3f km\n", res.Res.SumPerimeter/1e3)
		printStats(res)
	case "join":
		start := time.Now()
		spec := atgis.JoinSpec{
			Mask: func(f *geom.Feature) uint8 {
				if f.ID%2 == 0 {
					return query.SideA
				}
				return query.SideB
			},
			CellSize: *cell,
			// The parity mask reads only f.ID, so a warm partition rebuild
			// from the sidecar tape (boxes instead of full geometry) is safe.
			BoundsSafeMask: true,
		}
		// Stream pairs: nothing buffers, duplicates are suppressed at the
		// source by the reference-point test.
		pairs := eng.JoinStream(ctx, src, spec, opt)
		n := 0
		for pairs.Next() {
			if n < *show {
				p := pairs.Pair()
				fmt.Printf("  pair a=%d b=%d\n", p.AID, p.BID)
			}
			n++
		}
		sum, err := pairs.Summary()
		fatal(err)
		fmt.Printf("join: %d pairs (candidates %d, duplicates suppressed %d) in %v\n",
			n, sum.JoinStats.Candidates, sum.JoinStats.Duplicates, time.Since(start))
	default:
		fatal(fmt.Errorf("unknown query kind %q", *queryKind))
	}
}

func printStats(res *atgis.Result) {
	st := res.Stats
	// Split overlaps processing, so the phases do not sum: wall time is
	// the total (Stats.Total).
	fmt.Printf("phases: split %v (overlapped), process %v, merge %v; wall %v (%d blocks, %d workers, %.1f MB/s)\n",
		st.SplitTime, st.ProcessTime, st.MergeTime, st.Total(), st.Blocks, st.Workers, st.ThroughputMBs())
	if res.Repaired > 0 || res.Reprocessed > 0 {
		fmt.Printf("repaired blocks: %d, reprocessed blocks: %d\n", res.Repaired, res.Reprocessed)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis:", err)
		os.Exit(1)
	}
}
