// Command atgis-gen produces the synthetic evaluation datasets (paper
// Table 2 stand-ins):
//
//	atgis-gen -n 100000 -format geojson -o osm-g.json
//	atgis-gen -n 5000 -sigma 5 -format geojson -o synth-skew.json
//	atgis-gen -n 10000 -replicate 10 -format wkt -o osm-10g.wkt
package main

import (
	"flag"
	"fmt"
	"os"

	"atgis/internal/synth"
)

func main() {
	n := flag.Int("n", 10000, "number of features")
	sigma := flag.Float64("sigma", 0.5, "log-normal σ of the edge-count distribution")
	meanEdges := flag.Float64("edges", 12, "median polygon edge count")
	mpFrac := flag.Float64("multipoly", 0.15, "multipolygon fraction")
	lineFrac := flag.Float64("lines", 0.15, "linestring fraction")
	meta := flag.Int("metadata", 60, "free-form metadata bytes per feature")
	replicate := flag.Int("replicate", 1, "replication factor (OSM-10G style)")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "geojson", "geojson | wkt | osmxml")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	g := synth.New(synth.Config{
		Seed: *seed, N: *n, Sigma: *sigma, MeanEdges: *meanEdges,
		MultiPolyFrac: *mpFrac, LineFrac: *lineFrac,
		MetadataBytes: *meta, Replicate: *replicate,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "geojson":
		err = g.WriteGeoJSON(w)
	case "wkt":
		err = g.WriteWKT(w)
	case "osmxml":
		err = g.WriteOSMXML(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	fatal(err)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-gen:", err)
		os.Exit(1)
	}
}
