// Command atgis-lint runs the atgis static-analysis suite — the
// project-specific invariants off-the-shelf linters can't see:
//
//	guardedgo      goroutines in pipeline/join/server run under the
//	               Guarded/runShielded fault envelope
//	pairedrelease  admission slots, scheduler registrations, mmaps,
//	               gzip/stream writers, pooled scratch are released on
//	               every return path
//	ctxflow        request/pass paths thread the caller's context
//	mmapalias      block/source []byte never outlives its pass uncopied
//	hotalloc       //atgis:hotpath functions stay allocation-free
//
// Usage:
//
//	atgis-lint ./...                 run the suite standalone
//	atgis-lint -only a,b ./...       run selected analyzers
//	atgis-lint -hotalloc ./...       diff hot-path heap escapes against
//	                                 internal/analysis/hotalloc.budget
//	atgis-lint -hotalloc-update ./...  regenerate the budget
//	go vet -vettool=$(pwd)/bin/atgis-lint ./...   run under go vet
//
// Intentional violations are suppressed in source with
// `//lint:atgis-allow <analyzer> <reason>`; see docs/ANALYZERS.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"atgis/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("atgis-lint", flag.ExitOnError)
	var (
		vFlag     = fs.String("V", "", "print version and exit (go vet protocol)")
		flagsFlag = fs.Bool("flags", false, "print flag JSON and exit (go vet protocol)")
		jsonFlag  = fs.Bool("json", false, "accepted for go vet compatibility (output is textual)")
		listFlag  = fs.Bool("list", false, "list analyzers and exit")
		onlyFlag  = fs.String("only", "", "comma-separated analyzer subset to run")
		hotalloc  = fs.Bool("hotalloc", false, "run the hot-path escape diff against the committed budget")
		hotUpdate = fs.Bool("hotalloc-update", false, "regenerate the hot-path escape budget")
		budget    = fs.String("budget", analysis.DefaultBudgetFile, "hot-path escape budget file")
		dir       = fs.String("C", "", "run as if started in this directory")
	)
	fs.Parse(args)
	_ = jsonFlag

	// go vet protocol handshakes: version (hashed into build IDs) and
	// supported-flags query.
	if *vFlag != "" {
		name := filepath.Base(os.Args[0])
		fmt.Printf("%s version devel buildID=%02x\n", name, selfHash())
		return 0
	}
	if *flagsFlag {
		fmt.Println("[]")
		return 0
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*onlyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *hotalloc || *hotUpdate {
		return runHotalloc(*dir, *budget, *hotUpdate, patterns)
	}

	// go vet -vettool mode: a single *.cfg argument describing one
	// package.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVet(patterns[0], analyzers)
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-lint:", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atgis-lint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "atgis-lint: %d violation(s) — fix, or suppress with `%s <analyzer> <reason>`\n",
			bad, analysis.AllowDirective)
		return 1
	}
	return 0
}

// runVet handles one unit-checker invocation from cmd/go.
func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	pkg, cfg, err := analysis.LoadVetConfig(cfgPath)
	if werr := analysis.WriteVetx(cfg); werr != nil {
		fmt.Fprintln(os.Stderr, "atgis-lint:", werr)
		return 2
	}
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "atgis-lint:", err)
		return 2
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runHotalloc runs the escape diff (or regenerates the budget).
func runHotalloc(dir, budgetFile string, update bool, patterns []string) int {
	rep, err := analysis.EscapeDiff(dir, budgetFile, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-lint -hotalloc:", err)
		return 2
	}
	if rep.Marked == 0 {
		fmt.Fprintln(os.Stderr, "atgis-lint -hotalloc: no //atgis:hotpath functions found — "+
			"the directive set was deleted or mistyped, refusing to report a vacuous pass")
		return 1
	}
	if update {
		path := budgetFile
		if dir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if err := analysis.WriteBudget(path, rep); err != nil {
			fmt.Fprintln(os.Stderr, "atgis-lint -hotalloc-update:", err)
			return 2
		}
		fmt.Printf("hotalloc: budget regenerated with %d escape(s) across %d marked function(s)\n",
			len(rep.Current), rep.Marked)
		return 0
	}
	for _, k := range rep.Stale {
		fmt.Printf("hotalloc: stale budget entry (escape no longer produced): %s\n", k)
	}
	if len(rep.New) > 0 {
		for _, k := range rep.New {
			fmt.Printf("hotalloc: NEW heap escape in hot path: %s\n", k)
		}
		fmt.Fprintf(os.Stderr, "atgis-lint -hotalloc: %d new heap escape(s) in //atgis:hotpath "+
			"functions — eliminate them, or budget them explicitly with -hotalloc-update and "+
			"justify in the PR\n", len(rep.New))
		return 1
	}
	fmt.Printf("hotalloc: ok — %d marked function(s), %d budgeted escape(s), no new escapes\n",
		rep.Marked, len(rep.Current))
	return 0
}

// selfHash stamps the vet -V=full handshake with a digest of the
// binary, so cmd/go's action cache invalidates when the tool changes.
func selfHash() []byte {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return h.Sum(nil)[:8]
			}
		}
	}
	return []byte{0xa7, 0x91, 0x50}
}
