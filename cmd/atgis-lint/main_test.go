package main

// End-to-end tests for both driver modes: the standalone multichecker
// (atgis-lint ./...) and the go vet -vettool unitchecker protocol.
// The seeded-violation halves are the self-test CI relies on: a bare
// goroutine written into internal/pipeline must fail both paths, so a
// regression that silently blinds the suite cannot pass as "clean".

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot returns the repo root (this file lives in cmd/atgis-lint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// buildLint builds the atgis-lint binary into a temp dir.
func buildLint(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "atgis-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/atgis-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building atgis-lint: %v\n%s", err, out)
	}
	return bin
}

const seededViolation = `package pipeline

// Seeded by cmd/atgis-lint's end-to-end test; if this file survives a
// test run it is safe to delete.
func zzLintSelftestSeed(work []func()) {
	for _, w := range work {
		go w()
	}
}
`

func TestEndToEnd(t *testing.T) {
	root := moduleRoot(t)
	bin := buildLint(t, root)

	run := func(name string, args ...string) (string, int) {
		cmd := exec.Command(name, args...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return string(out), ee.ExitCode()
		}
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		return "", -1
	}

	// The committed tree is clean under both drivers.
	if out, code := run(bin, "./..."); code != 0 {
		t.Fatalf("standalone atgis-lint on a clean tree: exit %d\n%s", code, out)
	}
	if out, code := run("go", "vet", "-vettool="+bin, "./internal/pipeline"); code != 0 {
		t.Fatalf("go vet -vettool on a clean tree: exit %d\n%s", code, out)
	}

	// Seed a bare goroutine into internal/pipeline: both drivers must
	// reject it. The file is valid Go (it only violates the lint
	// contract), so a concurrently compiling package is unaffected.
	seed := filepath.Join(root, "internal", "pipeline", "zz_lint_selftest_seed.go")
	if err := os.WriteFile(seed, []byte(seededViolation), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seed)

	out, code := run(bin, "./internal/pipeline")
	if code == 0 || !strings.Contains(out, "guardedgo") {
		t.Fatalf("standalone atgis-lint missed the seeded violation: exit %d\n%s", code, out)
	}
	out, code = run("go", "vet", "-vettool="+bin, "./internal/pipeline")
	if code == 0 || !strings.Contains(out, "guardedgo") {
		t.Fatalf("go vet -vettool missed the seeded violation: exit %d\n%s", code, out)
	}

	if err := os.Remove(seed); err != nil {
		t.Fatal(err)
	}
}

// TestListAnalyzers sanity-checks the -list surface the docs point at.
func TestListAnalyzers(t *testing.T) {
	root := moduleRoot(t)
	bin := buildLint(t, root)
	cmd := exec.Command(bin, "-list")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, name := range []string{"guardedgo", "pairedrelease", "ctxflow", "mmapalias", "hotalloc"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
