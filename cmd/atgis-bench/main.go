// Command atgis-bench regenerates the tables and figures of the paper's
// evaluation section (§5). Every artefact has an experiment id:
//
//	atgis-bench -exp all
//	atgis-bench -exp fig10 -features 8000
//	atgis-bench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atgis/internal/experiments"
)

var ids = []string{
	"table1", "table2", "fig9a", "fig9b", "fig9c", "fig10", "fig11",
	"fig12", "fig13a", "fig13b", "fig14a", "fig14b", "fig15",
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	features := flag.Int("features", 0, "dataset size in objects (0 = default)")
	joinFeatures := flag.Int("join-features", 0, "join dataset size (0 = default)")
	workers := flag.Int("workers", 0, "max workers for scaling sweeps (0 = NumCPU)")
	seed := flag.Int64("seed", 0, "dataset seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.Bool("json", false,
		"run the headline micro-benchmarks and emit a machine-readable JSON summary (name, ns/op, MB/s, allocs/op)")
	flag.Parse()

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{
		Features:     *features,
		JoinFeatures: *joinFeatures,
		MaxWorkers:   *workers,
		Seed:         *seed,
	}
	if *jsonOut {
		if *exp != "all" {
			fmt.Fprintln(os.Stderr, "atgis-bench: -json runs the fixed micro-benchmark suite; -exp is ignored")
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(experiments.Micro(cfg)); err != nil {
			fmt.Fprintln(os.Stderr, "atgis-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "all" {
		for _, r := range experiments.All(cfg) {
			r.Print(os.Stdout)
		}
		return
	}
	r, err := experiments.ByID(cfg, *exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-bench:", err)
		os.Exit(1)
	}
	r.Print(os.Stdout)
}
