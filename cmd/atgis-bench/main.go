// Command atgis-bench regenerates the tables and figures of the paper's
// evaluation section (§5). Every artefact has an experiment id:
//
//	atgis-bench -exp all
//	atgis-bench -exp fig10 -features 8000
//	atgis-bench -list
//
// It is also the machine-readable perf-trajectory tool:
//
//	atgis-bench -json            # headline micro-benchmarks as JSON
//	atgis-bench -json -quick     # CI scale: smaller data, shorter runs
//	atgis-bench -compare BENCH_pr3.json -against current.json
//
// The -compare mode is CI's perf-regression gate: it matches current
// results against a committed baseline by benchmark name and compares
// MB/s throughput. The headline Fig. 9a PAT/FAT containment benchmarks
// and the Fig9cJoin two-pass join gate the build — a regression beyond
// -fail-below (default 15%) exits non-zero, beyond -warn-below (default
// 7%) prints a warning; all other benchmarks are reported
// informationally. Absolute numbers vary
// between hosts, so the gate is meant to compare runs from the same
// class of machine (the committed BENCH_prN.json baselines record the
// host they were measured on).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"atgis/internal/experiments"
)

var ids = []string{
	"table1", "table2", "fig9a", "fig9b", "fig9c", "fig10", "fig11",
	"fig12", "fig13a", "fig13b", "fig14a", "fig14b", "fig15",
}

// gated lists the benchmarks whose regression fails the -compare gate;
// everything else in the suite is reported but informational. Fig9cJoin
// extends the gate to the join path (partition pass + cell-batch
// sweep); baselines that predate it are simply reported as "(no
// baseline)" and do not gate.
var gated = map[string]bool{
	"Fig9aContainment/PAT": true,
	"Fig9aContainment/FAT": true,
	"Fig9cJoin":            true,
}

// quickFeatures is the -quick dataset scale: small enough for a CI
// runner, large enough that per-block scheduling and parsing dominate
// fixed per-op overheads (MB/s stays comparable across scales).
const quickFeatures = 800

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	features := flag.Int("features", 0, "dataset size in objects (0 = default)")
	joinFeatures := flag.Int("join-features", 0, "join dataset size (0 = default)")
	workers := flag.Int("workers", 0, "max workers for scaling sweeps (0 = NumCPU)")
	seed := flag.Int64("seed", 0, "dataset seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.Bool("json", false,
		"run the headline micro-benchmarks and emit a machine-readable JSON summary (name, ns/op, MB/s, allocs/op)")
	quick := flag.Bool("quick", false,
		"CI scale for -json/-compare: smaller datasets and ~300ms benchtime instead of 1s")
	compare := flag.String("compare", "",
		"perf-gate mode: baseline results file (a BENCH_prN.json envelope or a bare results array); compares MB/s and fails the Fig9a benchmarks on regression")
	against := flag.String("against", "",
		"with -compare: current results file; empty means run the micro suite now")
	failBelow := flag.Float64("fail-below", 15, "with -compare: regression %% that fails the gate")
	warnBelow := flag.Float64("warn-below", 7, "with -compare: regression %% that warns")
	flag.Parse()

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{
		Features:     *features,
		JoinFeatures: *joinFeatures,
		MaxWorkers:   *workers,
		Seed:         *seed,
	}
	if *quick {
		if cfg.Features == 0 {
			cfg.Features = quickFeatures
		}
		// testing.Benchmark honours the standard -test.benchtime flag;
		// registering the testing flags late keeps them off our CLI.
		testing.Init()
		if err := flag.Set("test.benchtime", "300ms"); err != nil {
			fmt.Fprintln(os.Stderr, "atgis-bench: set benchtime:", err)
			os.Exit(1)
		}
	}

	if *compare != "" {
		os.Exit(runCompare(*compare, *against, cfg, *failBelow, *warnBelow))
	}
	if *jsonOut {
		if *exp != "all" {
			fmt.Fprintln(os.Stderr, "atgis-bench: -json runs the fixed micro-benchmark suite; -exp is ignored")
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(experiments.Micro(cfg)); err != nil {
			fmt.Fprintln(os.Stderr, "atgis-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "all" {
		for _, r := range experiments.All(cfg) {
			r.Print(os.Stdout)
		}
		return
	}
	r, err := experiments.ByID(cfg, *exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-bench:", err)
		os.Exit(1)
	}
	r.Print(os.Stdout)
}

// benchEnvelope is the committed BENCH_prN.json shape; "after" holds
// the PR's measured results.
type benchEnvelope struct {
	After []experiments.MicroResult `json:"after"`
}

// loadResults reads either a BENCH_prN.json envelope or a bare
// MicroResult array, keyed by benchmark name.
func loadResults(path string) (map[string]experiments.MicroResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env benchEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || len(env.After) == 0 {
		var bare []experiments.MicroResult
		if jerr := json.Unmarshal(raw, &bare); jerr != nil || len(bare) == 0 {
			return nil, fmt.Errorf("%s: neither a BENCH envelope with an \"after\" array nor a results array", path)
		}
		env.After = bare
	}
	out := make(map[string]experiments.MicroResult, len(env.After))
	for _, r := range env.After {
		out[r.Name] = r
	}
	return out, nil
}

// runCompare is the perf-regression gate: exit status 0 (pass, possibly
// with warnings) or 1 (a gated benchmark regressed beyond failBelow, or
// inputs were unusable).
func runCompare(basePath, againstPath string, cfg experiments.Config, failBelow, warnBelow float64) int {
	base, err := loadResults(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgis-bench: baseline:", err)
		return 1
	}
	var cur []experiments.MicroResult
	if againstPath == "" {
		fmt.Fprintln(os.Stderr, "atgis-bench: running micro suite for comparison...")
		cur = experiments.Micro(cfg)
	} else {
		m, err := loadResults(againstPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atgis-bench: current:", err)
			return 1
		}
		for _, r := range m {
			cur = append(cur, r)
		}
		sort.Slice(cur, func(i, j int) bool { return cur[i].Name < cur[j].Name })
	}

	fmt.Printf("%-34s %12s %12s %8s  %s\n", "benchmark", "base MB/s", "cur MB/s", "delta", "gate")
	failed := false
	gatedSeen := 0
	for _, name := range orderedNames(cur) {
		c := curByName(cur, name)
		b, ok := base[name]
		if !ok || b.MBPerSec <= 0 || c.MBPerSec <= 0 {
			fmt.Printf("%-34s %12s %12.2f %8s  (no baseline)\n", name, "-", c.MBPerSec, "-")
			continue
		}
		delta := (c.MBPerSec - b.MBPerSec) / b.MBPerSec * 100
		verdict := "ok"
		if gated[name] {
			gatedSeen++
			switch {
			case delta < -failBelow:
				verdict = fmt.Sprintf("FAIL (> %.0f%% regression)", failBelow)
				failed = true
			case delta < -warnBelow:
				verdict = fmt.Sprintf("WARN (> %.0f%% regression)", warnBelow)
			}
		} else {
			verdict = "info"
		}
		fmt.Printf("%-34s %12.2f %12.2f %+7.1f%%  %s\n", name, b.MBPerSec, c.MBPerSec, delta, verdict)
	}
	if gatedSeen == 0 {
		fmt.Fprintln(os.Stderr, "atgis-bench: no gated benchmarks present in the comparison")
		return 1
	}
	if failed {
		fmt.Fprintln(os.Stderr, "atgis-bench: perf-regression gate FAILED")
		return 1
	}
	fmt.Println("perf-regression gate passed")
	return 0
}

// orderedNames returns result names in their suite order (results from
// a map-loaded -against file get a deterministic order too).
func orderedNames(rs []experiments.MicroResult) []string {
	names := make([]string, 0, len(rs))
	for _, r := range rs {
		names = append(names, r.Name)
	}
	// Gated benchmarks print first so the gate verdict leads the table.
	ordered := names[:0:0]
	for _, n := range names {
		if gated[n] {
			ordered = append(ordered, n)
		}
	}
	for _, n := range names {
		if !gated[n] {
			ordered = append(ordered, n)
		}
	}
	return ordered
}

func curByName(rs []experiments.MicroResult, name string) experiments.MicroResult {
	for _, r := range rs {
		if r.Name == name {
			return r
		}
	}
	return experiments.MicroResult{}
}
