// Command atgis-serve exposes an atgis Engine over HTTP: registered
// datasets are memory-mapped once and served to any number of
// concurrent tenants as streaming NDJSON query and join responses, with
// weighted-fair admission control in front of the shared worker pool.
//
//	atgis-gen -n 100000 -format geojson -o data.geojson
//	atgis-serve -listen :8080 -source data=data.geojson
//	curl -s localhost:8080/v1/query -d '{"source":"data","kind":"aggregation","ref":[-45,-45,45,45],"want":["area"]}'
//
// See docs/API.md for the full HTTP surface and docs/ARCHITECTURE.md
// for how the service layers over the engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"atgis"
	"atgis/internal/cluster"
	"atgis/internal/server"
)

// sourceFlags collects repeated -source name=path[:format] arguments.
type sourceFlags []string

func (s *sourceFlags) String() string { return strings.Join(*s, ",") }

func (s *sourceFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("-source wants name=path[:format], got %q", v)
	}
	*s = append(*s, v)
	return nil
}

// workerFlags collects repeated -worker url arguments (coordinator
// mode's worker set).
type workerFlags []string

func (w *workerFlags) String() string { return strings.Join(*w, ",") }

func (w *workerFlags) Set(v string) error {
	if !strings.HasPrefix(v, "http://") && !strings.HasPrefix(v, "https://") {
		return fmt.Errorf("-worker wants a base URL like http://host:port, got %q", v)
	}
	*w = append(*w, v)
	return nil
}

// weightFlags collects repeated -tenant-weight name=N arguments into
// the engine's tenant-weight map (admission round-robin and pool
// worker scheduling alike).
type weightFlags map[string]int

func (w weightFlags) String() string {
	var parts []string
	for name, n := range w {
		parts = append(parts, fmt.Sprintf("%s=%d", name, n))
	}
	return strings.Join(parts, ",")
}

func (w weightFlags) Set(v string) error {
	name, num, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("-tenant-weight wants name=N, got %q", v)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 1 {
		return fmt.Errorf("-tenant-weight %q: weight must be a positive integer", v)
	}
	w[name] = n
	return nil
}

func main() {
	listen := flag.String("listen", ":8080", "address to serve on")
	workers := flag.Int("workers", 0, "shared worker pool size (0 = NumCPU)")
	blockSize := flag.Int("block", 1<<20, "default block size in bytes")
	maxInFlight := flag.Int("max-inflight", 4, "concurrently executing queries (0 disables admission control)")
	tenantQueue := flag.Int("queue", 16, "per-tenant admission queue cap")
	allowRegister := flag.Bool("allow-register", false,
		"allow POST /v1/sources to map server-local files named by clients (leave off when fronting untrusted clients)")
	defaultTimeout := flag.Duration("default-timeout", 0,
		"wall-clock budget for query/join requests without a timeout_ms field (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0,
		"cap on any client-requested timeout_ms; larger requests are clamped (0 = uncapped)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second,
		"how long graceful shutdown waits for in-flight streams before cutting their connections")
	sidecarFlag := flag.String("sidecar", "off",
		"structural sidecar index (<path>.atgx): off | read | readwrite")
	pinWorkers := flag.Bool("pin-workers", false,
		"pin each pool worker's OS thread to one CPU (Linux sched_setaffinity, best-effort; no-op elsewhere) so the scheduler's locality-aware dispatch keeps warm source mappings on one core")
	coordinator := flag.Bool("coordinator", false,
		"run as a cluster coordinator: scatter queries and joins over the -worker set and merge their streams (no local engine or sources)")
	healthInterval := flag.Duration("health-interval", time.Second,
		"coordinator worker health-probe period")
	var workerURLs workerFlags
	flag.Var(&workerURLs, "worker", "worker base URL for -coordinator mode, e.g. http://10.0.0.2:8080 (repeatable)")
	var sources sourceFlags
	flag.Var(&sources, "source", "register a dataset at startup: name=path[:format] (repeatable)")
	weights := weightFlags{}
	flag.Var(weights, "tenant-weight",
		"tenant weight name=N (repeatable; absent tenants weigh 1): N× the admission round-robin share and N× the worker-pool share of concurrent passes")
	flag.Parse()

	sidecarMode, err := atgis.ParseSidecarMode(*sidecarFlag)
	if err != nil {
		log.Fatal(err)
	}

	var srv *server.Server
	if *coordinator {
		// Coordinator mode: no local engine, no local sources — every
		// pass scatters over the workers.
		if len(workerURLs) == 0 {
			log.Fatal("atgis-serve: -coordinator requires at least one -worker url")
		}
		if len(sources) > 0 {
			log.Fatal("atgis-serve: -source is a worker flag; register the files on the workers")
		}
		if *allowRegister {
			log.Fatal("atgis-serve: -allow-register is a worker flag; the coordinator never registers sources")
		}
		cl, err := cluster.New(cluster.Config{
			Workers:        workerURLs,
			HealthInterval: *healthInterval,
		})
		if err != nil {
			log.Fatalf("atgis-serve: %v", err)
		}
		cl.Start()
		defer cl.Stop()
		srv = server.New(server.Config{
			Cluster:        cl,
			DefaultTimeout: *defaultTimeout,
			MaxTimeout:     *maxTimeout,
		})
	} else {
		if len(workerURLs) > 0 {
			log.Fatal("atgis-serve: -worker requires -coordinator")
		}
		eng := atgis.NewEngine(atgis.EngineConfig{
			Workers:       *workers,
			BlockSize:     *blockSize,
			MaxInFlight:   *maxInFlight,
			TenantQueue:   *tenantQueue,
			TenantWeights: weights,
			Sidecar:       sidecarMode,
			PinWorkers:    *pinWorkers,
		})
		defer eng.Close()
		srv = server.New(server.Config{
			Engine:         eng,
			Options:        atgis.Options{BlockSize: *blockSize},
			AllowRegister:  *allowRegister,
			DefaultTimeout: *defaultTimeout,
			MaxTimeout:     *maxTimeout,
		})
	}
	defer srv.Close()

	for _, spec := range sources {
		name, rest, _ := strings.Cut(spec, "=")
		path, format, _ := strings.Cut(rest, ":")
		if err := srv.RegisterFile(name, path, format); err != nil {
			log.Fatalf("atgis-serve: %v", err)
		}
		log.Printf("registered source %q from %s", name, path)
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// No WriteTimeout: query responses stream for as long as the
		// pass runs; a dropped connection cancels the pass instead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			// Streams still open past the drain budget: cut their
			// connections, whose contexts cancel the passes.
			log.Printf("atgis-serve: drain exceeded %v, abandoning %d in-flight request(s)",
				*shutdownTimeout, srv.Inflight())
			hs.Close()
		}
	}()

	if *coordinator {
		log.Printf("atgis-serve coordinating %d worker(s) on %s", len(workerURLs), *listen)
	} else {
		log.Printf("atgis-serve listening on %s (workers=%d, max-inflight=%d)", *listen, *workers, *maxInFlight)
	}
	err = hs.ListenAndServe()
	// Wait for Shutdown to drain in-flight requests before the deferred
	// srv.Close()/eng.Close() unmap sources and stop the pool under
	// them. stop() unblocks the goroutine when ListenAndServe failed on
	// its own (e.g. port in use) rather than via a signal.
	stop()
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("atgis-serve: %v", err)
	}
	log.Printf("atgis-serve: shut down")
}
