package atgis_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"atgis"
	"atgis/internal/geom"
	"atgis/internal/query"
)

// A minimal FeatureCollection used by the runnable examples.
const exampleGeoJSON = `{"type":"FeatureCollection","features":[
 {"type":"Feature","id":1,"geometry":{"type":"Polygon","coordinates":[[[0,0],[10,0],[10,10],[0,10],[0,0]]]}},
 {"type":"Feature","id":2,"geometry":{"type":"Polygon","coordinates":[[[40,40],[50,40],[50,50],[40,50],[40,40]]]}},
 {"type":"Feature","id":3,"geometry":{"type":"Point","coordinates":[5,5]}}
]}`

// ExampleOpenMapped memory-maps a file and runs one aggregation pass
// over it.
func ExampleOpenMapped() {
	path := filepath.Join(os.TempDir(), "atgis-example.geojson")
	if err := os.WriteFile(path, []byte(exampleGeoJSON), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	src, err := atgis.OpenMapped(path, atgis.AutoDetect)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	eng := atgis.NewEngine(atgis.EngineConfig{})
	defer eng.Close()

	res, err := eng.Query(context.Background(), src, &query.Spec{
		Kind: query.Containment,
		Ref:  geom.Box{MinX: -1, MinY: -1, MaxX: 20, MaxY: 20}.AsPolygon(),
		Pred: query.PredIntersects,
	}, atgis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: matched %d of %d\n", src.DataFormat(), res.Res.Count, res.Res.Scanned)
	// Output: geojson: matched 2 of 3
}

// ExampleEngine_Prepare compiles a query once and executes it multiple
// times, with context cancellation available per execution.
func ExampleEngine_Prepare() {
	src, err := atgis.FromBytes([]byte(exampleGeoJSON), atgis.AutoDetect)
	if err != nil {
		log.Fatal(err)
	}
	eng := atgis.NewEngine(atgis.EngineConfig{Workers: 2})
	defer eng.Close()

	pq, err := eng.Prepare(&query.Spec{
		Kind:     query.Aggregation,
		Ref:      geom.Box{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}.AsPolygon(),
		Pred:     query.PredIntersects,
		WantArea: true,
	}, atgis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := pq.Execute(context.Background(), src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: scanned %d, matched %d\n", run, res.Res.Scanned, res.Res.Count)
	}
	// Output:
	// run 0: scanned 3, matched 3
	// run 1: scanned 3, matched 3
}

// ExamplePreparedQuery_Stream iterates matching features as the parallel
// pass produces them instead of buffering the result set.
func ExamplePreparedQuery_Stream() {
	src, err := atgis.FromBytes([]byte(
		"1\tPOLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))\n"+
			"2\tPOINT (60 60)\n"+
			"3\tPOLYGON ((1 1, 6 1, 6 6, 1 6, 1 1))\n"), atgis.WKT)
	if err != nil {
		log.Fatal(err)
	}
	eng := atgis.NewEngine(atgis.EngineConfig{})
	defer eng.Close()

	pq, err := eng.Prepare(&query.Spec{
		Kind: query.Containment,
		Ref:  geom.Box{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}.AsPolygon(),
		Pred: query.PredIntersects,
	}, atgis.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res := pq.Stream(context.Background(), src)
	for res.Next() {
		fmt.Printf("match id=%d\n", res.Feature().ID)
	}
	sum, err := res.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d\n", sum.Res.Scanned)
	// Output:
	// match id=1
	// match id=3
	// scanned 3
}

// ExampleReaderSource buffers piped input that cannot be memory-mapped.
func ExampleReaderSource() {
	pipe, w, err := os.Pipe()
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		w.WriteString("POINT (1 2)\nPOINT (3 4)\n") // bare WKT auto-detects
		w.Close()
	}()
	src, err := atgis.ReaderSource(pipe, atgis.AutoDetect)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	fmt.Println(src.DataFormat())
	// Output: wkt
}
