package atgis

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"atgis/internal/admission"
	"atgis/internal/geojson"
	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/osmxml"
	"atgis/internal/partition"
	"atgis/internal/pipeline"
	"atgis/internal/query"
	"atgis/internal/sidecar"
	"atgis/internal/wkt"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Workers is the size of the shared worker pool (0 = GOMAXPROCS).
	// All concurrent queries on the engine share these workers.
	Workers int
	// BlockSize is the default block size in bytes for queries that do
	// not set Options.BlockSize (0 = 1 MiB).
	BlockSize int

	// MaxInFlight, when positive, enables admission control: at most
	// this many queries (Execute, Stream, Join, JoinStream, Combined,
	// CollectFeatures passes) run concurrently; further queries wait in
	// per-tenant FIFO queues served by weighted round-robin, so one
	// flooding tenant cannot starve the others. Zero disables admission
	// (the pool still bounds CPU, but not queueing).
	MaxInFlight int
	// TenantQueue caps each tenant's waiting queries when MaxInFlight
	// is set (0 = 16). A query arriving with its tenant's queue full
	// fails fast with an error matching admission.ErrOverloaded that
	// carries a Retry-After estimate.
	TenantQueue int
	// TenantWeights optionally assigns per-tenant weights (absent
	// tenants weigh 1). Tag query contexts with WithTenant. Weights
	// govern both fairness layers: the admission gate's round-robin
	// over queued queries, and the worker pool's block-dispatch
	// scheduler, which grants freed workers to admitted passes in
	// proportion to their tenant's weight. They apply to the pool even
	// when MaxInFlight is zero (no admission control).
	//
	// Weights apportion workers at grant instants. Every granted task
	// is one scheduling quantum — a pipeline block for queries, a cell
	// batch for join sweeps — so a heavy pass of either kind defers
	// other tenants by at most one quantum per worker before the
	// scheduler reconsiders who is furthest behind.
	TenantWeights map[string]int

	// Sidecar controls use of persistent per-source structural indexes
	// (`<path>.atgx` next to each mapped file): SidecarOff (default)
	// ignores them, SidecarRead uses a valid existing sidecar to run
	// warm passes, SidecarReadWrite additionally records the tape
	// during the first successful cold pass and persists it. Sidecars
	// only apply to OpenMapped sources; a missing, stale or corrupt
	// sidecar always degrades to a cold pass.
	Sidecar SidecarMode

	// PinWorkers pins each pool worker's OS thread to one CPU (Linux
	// sched_setaffinity; a no-op elsewhere), complementing the
	// scheduler's locality tie-break: a worker that keeps streaming the
	// same source mapping also keeps running on the same core, so the
	// mapping's pages stay in that core's cache hierarchy. Best-effort —
	// workers whose pin fails run unpinned. PoolStats.PinnedWorkers
	// reports how many pins took effect.
	PinWorkers bool
}

// defaultTenantQueue is the per-tenant queue cap when admission is
// enabled without an explicit TenantQueue.
const defaultTenantQueue = 16

// WithTenant tags ctx with a tenant name for admission accounting and
// fairness. Untagged contexts share the anonymous tenant "".
func WithTenant(ctx context.Context, tenant string) context.Context {
	return admission.WithTenant(ctx, tenant)
}

// ErrOverloaded is the sentinel matched (errors.Is) by admission
// rejections; the concrete error is *OverloadError. Re-exported from
// the internal admission package so callers outside this module can
// match rejections.
var ErrOverloaded = admission.ErrOverloaded

// OverloadError is the admission-rejection error (errors.As), carrying
// the tenant, its queue depth and a Retry-After estimate.
type OverloadError = admission.OverloadError

// AdmissionStats is the admission gate's snapshot type, carried in
// EngineStats.Admission.
type AdmissionStats = admission.Stats

// ErrSourceFault is the sentinel matched (errors.Is) when a pass died
// on a memory fault while reading its input — typically the mmap'd
// source file was truncated or deleted under the mapping (SIGBUS). The
// fault is confined to the failing pass: the engine, its pool, and all
// concurrent queries keep running. The concrete error is
// *SourceFaultError. Serving layers should mark the source unhealthy
// and keep the process up.
var ErrSourceFault = pipeline.ErrSourceFault

// SourceFaultError is the typed per-pass memory-fault error (errors.As),
// carrying the pass label, the pipeline phase, the block or batch index
// and the faulting address.
type SourceFaultError = pipeline.SourceFaultError

// PassPanicError is the typed error (errors.As) a query or join returns
// when a panic — a parser bug on malformed bytes, adversarial geometry —
// was recovered inside its pass. The panic is confined: only the owning
// pass fails; the engine, the shared pool and every concurrent tenant's
// pass keep running. It carries the pass label (tenant), the phase, the
// block or batch index, the panic value and the captured stack.
type PassPanicError = pipeline.PassPanicError

// Engine executes queries. It owns a persistent worker pool shared by
// every query it runs, so many concurrent requests against one or more
// open Sources contend for a bounded set of processing threads instead
// of each spawning their own; parser machines recycle through pools
// across blocks and across queries.
//
// An Engine is safe for concurrent use. The zero value is valid: it
// runs each query on its own transient workers (Options.Workers many),
// which is what the package-level compatibility wrappers use. NewEngine
// attaches the shared pool; Close releases it.
type Engine struct {
	blockSize int
	pool      *pipeline.Pool
	gate      *admission.Gate // nil = no admission control
	weights   map[string]int  // tenant → pool-scheduling weight
	sidecar   SidecarMode
	closed    atomic.Bool
}

// NewEngine starts an engine with a shared worker pool and, when
// cfg.MaxInFlight is positive, an admission gate in front of query
// execution.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{blockSize: cfg.BlockSize, pool: pipeline.NewPoolPinned(cfg.Workers, cfg.PinWorkers), sidecar: cfg.Sidecar}
	if len(cfg.TenantWeights) > 0 {
		// Private copy: the gate and the pool scheduler read these on
		// every pass, and the caller's map must stay free to mutate
		// after NewEngine.
		e.weights = make(map[string]int, len(cfg.TenantWeights))
		for t, w := range cfg.TenantWeights {
			e.weights[t] = w
		}
	}
	if cfg.MaxInFlight > 0 {
		queue := cfg.TenantQueue
		if queue == 0 {
			queue = defaultTenantQueue
		}
		e.gate = admission.New(admission.Config{
			MaxInFlight: cfg.MaxInFlight,
			MaxQueued:   queue,
			Weights:     e.weights,
		})
	}
	return e
}

// admit passes the query through the engine's admission gate (if any),
// returning the release to defer. The tenant comes from ctx
// (WithTenant); engines without admission admit immediately.
func (e *Engine) admit(ctx context.Context) (func(), error) {
	if e == nil || e.gate == nil {
		return func() {}, nil
	}
	return e.gate.Acquire(ctx, admission.Tenant(ctx))
}

// PoolStats reports shared-pool utilisation.
type PoolStats struct {
	// Workers is the pool size (0 for pool-less engines, whose queries
	// run on transient goroutines).
	Workers int `json:"workers"`
	// Busy is the number of workers currently executing a task.
	Busy int `json:"busy"`
	// PinnedWorkers is how many workers are pinned to a CPU
	// (EngineConfig.PinWorkers; 0 when pinning is off or unsupported).
	PinnedWorkers int `json:"pinned_workers,omitempty"`
}

// SchedulerTenantStats describes one tenant currently registered with
// the pool's weighted task-dispatch scheduler.
type SchedulerTenantStats struct {
	// Weight is the tenant's scheduling weight.
	Weight int `json:"weight"`
	// Passes is the tenant's currently registered passes (query
	// pipelines and join sweeps).
	Passes int `json:"passes"`
	// JoinPasses is how many of those passes are cell-batch join
	// sweeps.
	JoinPasses int `json:"join_passes,omitempty"`
	// QueuedBlocks counts tasks (blocks and cell batches) waiting for a
	// worker grant.
	QueuedBlocks int `json:"queued_blocks"`
	// QueuedCellBatches is the join-sweep subset of QueuedBlocks.
	QueuedCellBatches int `json:"queued_cell_batches,omitempty"`
	// GrantedBlocks counts tasks granted to the tenant's passes since
	// the tenant last became active (the entry is dropped when its last
	// pass deregisters, like the admission gate's tenant map).
	GrantedBlocks uint64 `json:"granted_blocks"`
	// GrantedCellBatches is the join-sweep subset of GrantedBlocks.
	GrantedCellBatches uint64 `json:"granted_cell_batches,omitempty"`
	// RecentGrantedBlocks counts the tenant's grants over the trailing
	// share window (~15 s) — what WorkerShare is computed from.
	RecentGrantedBlocks uint64 `json:"recent_granted_blocks"`
	// WorkerShare is the tenant's fraction of the grants made to the
	// currently active tenants over the trailing share window — the
	// observed recent worker share the weights are converging, rather
	// than a share-since-activation average that ancient bursts skew.
	WorkerShare float64 `json:"worker_share"`
	// Deficit is how far behind its proportional share the tenant is,
	// in weighted task units (the scheduler's virtual clock minus the
	// tenant's virtual time; larger = served sooner).
	Deficit float64 `json:"deficit"`
}

// SchedulerStats snapshots the worker pool's weighted scheduler:
// admission decides whether a query runs, this scheduler decides which
// admitted pass receives each freed worker.
type SchedulerStats struct {
	// TotalGrantedBlocks counts every task dispatched by the pool
	// since the engine started (blocks and cell batches).
	TotalGrantedBlocks uint64 `json:"total_granted_blocks"`
	// TotalGrantedCellBatches is the join cell-batch subset of
	// TotalGrantedBlocks.
	TotalGrantedCellBatches uint64 `json:"total_granted_cell_batches"`
	// LocalityHits counts grants that kept a worker on the source
	// mapping its previous grant streamed; LocalityMisses counts grants
	// that switched it. Only grants of passes with a known mapping are
	// counted, so hits/(hits+misses) gauges how often the scheduler's
	// locality tie-break (plus run overlap) preserves warm mappings.
	LocalityHits   uint64 `json:"locality_hits"`
	LocalityMisses uint64 `json:"locality_misses"`
	// Tenants maps each tenant with registered passes to its live
	// scheduling state; empty when the pool is idle.
	Tenants map[string]SchedulerTenantStats `json:"tenants,omitempty"`
}

// EngineStats is a point-in-time operational snapshot of an engine,
// surfaced by atgis-serve's GET /v1/stats.
type EngineStats struct {
	Pool PoolStats `json:"pool"`
	// Admission is nil when admission control is disabled.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Scheduler is nil for pool-less engines.
	Scheduler *SchedulerStats `json:"scheduler,omitempty"`
}

// Stats snapshots pool utilisation, the weighted scheduler and
// admission-queue state.
func (e *Engine) Stats() EngineStats {
	var st EngineStats
	if e == nil {
		return st
	}
	if e.pool != nil {
		st.Pool = PoolStats{Workers: e.pool.Size(), Busy: e.pool.Busy(), PinnedWorkers: e.pool.Pinned()}
		snap := e.pool.SchedSnapshot()
		sched := &SchedulerStats{
			TotalGrantedBlocks:      snap.TotalGranted,
			TotalGrantedCellBatches: snap.TotalGrantedBatches,
			LocalityHits:            snap.LocalityHits,
			LocalityMisses:          snap.LocalityMisses,
		}
		// Shares are computed over the trailing window, not since
		// activation: a tenant that burst minutes ago and has been
		// quiet since should not read as holding the pool today.
		var recentGrants uint64
		for _, p := range snap.Passes {
			recentGrants += p.RecentGranted
		}
		for _, p := range snap.Passes {
			ts := SchedulerTenantStats{
				Weight:              p.Weight,
				Passes:              p.Passes,
				JoinPasses:          p.JoinPasses,
				QueuedBlocks:        p.Queued,
				QueuedCellBatches:   p.QueuedBatches,
				GrantedBlocks:       p.Granted,
				GrantedCellBatches:  p.GrantedBatches,
				RecentGrantedBlocks: p.RecentGranted,
				Deficit:             p.Deficit,
			}
			if recentGrants > 0 {
				ts.WorkerShare = float64(p.RecentGranted) / float64(recentGrants)
			}
			if sched.Tenants == nil {
				sched.Tenants = make(map[string]SchedulerTenantStats, len(snap.Passes))
			}
			sched.Tenants[p.Label] = ts
		}
		st.Scheduler = sched
	}
	if e.gate != nil {
		snap := e.gate.Snapshot()
		st.Admission = &snap
	}
	return st
}

// Close stops the engine's worker pool. Queries must not be in flight;
// further queries on the engine fail.
func (e *Engine) Close() error {
	if e.closed.CompareAndSwap(false, true) && e.pool != nil {
		e.pool.Close()
	}
	return nil
}

// ErrEngineClosed is returned by queries on a closed engine.
var ErrEngineClosed = fmt.Errorf("atgis: engine closed")

func (e *Engine) check() error {
	if e != nil && e.closed.Load() {
		return ErrEngineClosed
	}
	return nil
}

// weightFor resolves the pool-scheduling weight of a tenant: the
// admission gate's weight when admission is enabled (so both fairness
// layers share one accounting), else the engine's own TenantWeights
// copy; 1 everywhere else.
func (e *Engine) weightFor(tenant string) int {
	if e == nil {
		return 1
	}
	if e.gate != nil {
		return e.gate.Weight(tenant)
	}
	if w, ok := e.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// exec selects the processing resources for one run: the engine's
// shared pool when present (registered with the pool's weighted
// scheduler under ctx's tenant and weight), else transient per-run
// workers. data is the run's input bytes; its mapping identity becomes
// the pass's scheduler locality key.
func (e *Engine) exec(ctx context.Context, opt Options, data []byte) pipeline.Exec {
	if e != nil && e.pool != nil {
		tenant := admission.Tenant(ctx)
		return pipeline.Exec{
			Pool:   e.pool,
			Weight: e.weightFor(tenant),
			Label:  tenant,
			Source: pipeline.SourceKey(data),
		}
	}
	return pipeline.Exec{Workers: opt.workers()}
}

// opts applies the engine's defaults to per-query options.
func (e *Engine) opts(opt Options) Options {
	if opt.BlockSize == 0 && e != nil && e.blockSize > 0 {
		opt.BlockSize = e.blockSize
	}
	return opt
}

// defaultEngine backs the Dataset compatibility wrappers: no shared
// pool, transient workers per call, never closed.
var defaultEngine = &Engine{}

// Query executes a single-pass containment or aggregation query (Fig. 6:
// parse/extract → transform/filter → aggregate) in one parallel pass
// over the raw input of src. It is the one-shot form of
// Prepare + Execute.
func (e *Engine) Query(ctx context.Context, src Source, spec *query.Spec, opt Options) (*Result, error) {
	p, err := e.Prepare(spec, opt)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx, src)
}

// CollectFeatures parses the whole source into features (used by the
// baseline engines, which require loaded data — the phase AT-GIS skips).
func (e *Engine) CollectFeatures(ctx context.Context, src Source, opt Options) ([]geom.Feature, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	opt = e.opts(opt)
	data := src.Bytes()
	var feats []geom.Feature
	consume := func(f *geom.Feature) { feats = append(feats, *f) }
	switch src.DataFormat() {
	case GeoJSON:
		_, _, _, err = e.runGeoJSONWith(ctx, data, &geojson.Config{PropKeys: opt.PropKeys}, opt,
			func(f geojson.FeatureOut) { feats = append(feats, f.Feature) })
	case WKT:
		_, err = e.runWKT(ctx, data, opt, consume)
	case OSMXML:
		_, err = e.runOSM(ctx, data, opt, consume)
	default:
		err = fmt.Errorf("atgis: unsupported format %v", src.DataFormat())
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].Offset < feats[j].Offset })
	return feats, nil
}

// runGeoJSONWith executes the GeoJSON pipeline (FAT or PAT per opt.Mode)
// with an explicit extraction config, streaming features into sink. It
// returns the pipeline stats plus the repaired (PAT) and reprocessed
// (FAT) block counts. The query path and the join partition pass share
// this one pipeline assembly.
func (e *Engine) runGeoJSONWith(ctx context.Context, data []byte, cfg *geojson.Config, opt Options, sink func(geojson.FeatureOut)) (pipeline.Stats, int, int, error) {
	if opt.Mode == FAT {
		fold := geojson.NewFold(data, cfg, sink)
		st, err := pipeline.RunCtx(ctx, data,
			pipeline.FixedSplitter{BlockSize: opt.blockSize()},
			e.exec(ctx, opt, data),
			func(b pipeline.Block) geojson.BlockResult {
				return geojson.ProcessBlockFAT(data, b.Start, b.End, cfg)
			},
			func(b pipeline.Block, r geojson.BlockResult) { fold.Add(r) },
		)
		if err != nil {
			return st, 0, fold.Reprocessed, err
		}
		return st, 0, fold.Reprocessed, fold.Finish()
	}
	// PAT: boundary-searching splitter plus optimised per-block parser.
	// The boundary scan streams cuts so block parsing starts while the
	// scan is still running.
	fold := geojson.NewPATFold(data, cfg, sink)
	headerDone := false
	st, err := pipeline.RunCtx(ctx, data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64) bool) {
			geojson.FindFeatureBoundariesStream(input, opt.blockSize(), yield)
		}),
		e.exec(ctx, opt, data),
		func(b pipeline.Block) *geojson.PATBlockResult {
			if b.Index == 0 {
				return nil // header handled by the fold
			}
			r := geojson.ProcessBlockPAT(data, b.Start, b.End, cfg)
			return &r
		},
		func(b pipeline.Block, r *geojson.PATBlockResult) {
			if r == nil {
				fold.Header(b.End)
				headerDone = true
				return
			}
			if !headerDone {
				fold.Header(0)
				headerDone = true
			}
			fold.Add(*r)
		},
	)
	if err != nil {
		return st, fold.Repaired, 0, err
	}
	return st, fold.Repaired, 0, fold.Finish(int64(len(data)))
}

func (e *Engine) runWKT(ctx context.Context, data []byte, opt Options, consume func(*geom.Feature)) (pipeline.Stats, error) {
	type frag struct {
		feats []geom.Feature
		err   error
	}
	var firstErr error
	st, err := pipeline.RunCtx(ctx, data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64) bool) {
			wkt.SplitLinesStream(input, opt.blockSize(), yield)
		}),
		e.exec(ctx, opt, data),
		func(b pipeline.Block) frag {
			var fr frag
			fr.err = wkt.EachLine(data, b.Start, b.End, func(line []byte, off int64) error {
				f, err := wkt.ParseLine(line, off)
				if err != nil {
					return err
				}
				fr.feats = append(fr.feats, f)
				return nil
			})
			return fr
		},
		func(b pipeline.Block, fr frag) {
			if fr.err != nil && firstErr == nil {
				firstErr = fr.err
			}
			for i := range fr.feats {
				consume(&fr.feats[i])
			}
		},
	)
	if err != nil {
		return st, err
	}
	return st, firstErr
}

// runOSM executes the multi-pass OSM XML pipeline: pass 1 builds the
// node table and collects ways/relations in parallel; pass 2 assembles
// geometries and evaluates the query.
func (e *Engine) runOSM(ctx context.Context, data []byte, opt Options, consume func(*geom.Feature)) (pipeline.Stats, error) {
	nodes := osmxml.NewNodeTable()
	wayTab := osmxml.NewWayTable()
	type frag struct {
		ways []*osmxml.Way
		rels []*osmxml.Relation
		err  error
	}
	var firstErr error
	var allWays []*osmxml.Way
	var allRels []*osmxml.Relation
	st, err := pipeline.RunCtx(ctx, data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64) bool) {
			osmxml.SplitElementsStream(input, opt.blockSize(), yield)
		}),
		e.exec(ctx, opt, data),
		func(b pipeline.Block) frag {
			var fr frag
			fr.err = osmxml.ParseBlock(data, b.Start, b.End, &osmxml.Handler{
				OnNode: nodes.Put,
				OnWay:  func(w *osmxml.Way) { fr.ways = append(fr.ways, w) },
				OnRelation: func(r *osmxml.Relation) {
					fr.rels = append(fr.rels, r)
				},
			})
			return fr
		},
		func(b pipeline.Block, fr frag) {
			if fr.err != nil && firstErr == nil {
				firstErr = fr.err
			}
			allWays = append(allWays, fr.ways...)
			allRels = append(allRels, fr.rels...)
		},
	)
	if err != nil {
		return st, err
	}
	if firstErr != nil {
		return st, firstErr
	}
	for _, w := range allWays {
		wayTab.Put(w)
	}
	// Pass 2: assemble + evaluate. Ways referenced by multipolygon
	// relations are consumed by the relation, not emitted standalone.
	inRelation := make(map[int64]bool)
	for _, r := range allRels {
		for _, m := range r.Members {
			if m.Type == "way" {
				inRelation[m.Ref] = true
			}
		}
	}
	for i, w := range allWays {
		if i&1023 == 0 && ctx.Err() != nil {
			return st, ctx.Err()
		}
		if inRelation[w.ID] {
			continue
		}
		g, err := osmxml.AssembleWay(w, nodes)
		if err != nil {
			return st, err
		}
		f := geom.Feature{ID: w.ID, Geom: g, Offset: w.Off}
		consume(&f)
	}
	for i, r := range allRels {
		if i&1023 == 0 && ctx.Err() != nil {
			return st, ctx.Err()
		}
		g, err := osmxml.AssembleRelation(r, wayTab, nodes)
		if err != nil {
			return st, err
		}
		f := geom.Feature{ID: r.ID, Geom: g, Offset: r.Off}
		consume(&f)
	}
	return st, nil
}

// Join executes the two-pass PBSM join (Fig. 6 then Fig. 8) over src,
// buffering the full pair set; JoinStream is the iterator form.
func (e *Engine) Join(ctx context.Context, src Source, spec JoinSpec, opt Options) (*JoinResult, error) {
	// Check before admitting (like every other entry point): a closed
	// engine must report ErrEngineClosed, not occupy a slot and risk
	// being misreported as overload.
	if err := e.check(); err != nil {
		return nil, err
	}
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	jr, _, err := e.join(ctx, src, spec, opt)
	return jr, err
}

// join is Join plus the reparser it built, so callers that keep
// re-parsing joined objects (Combined's union aggregate) reuse it —
// for OSM XML the reparser costs a full parallel pass to build. The
// caller admits (Join, Combined): admission must span everything the
// caller does with the reparser, not just the join passes.
func (e *Engine) join(ctx context.Context, src Source, spec JoinSpec, opt Options) (*JoinResult, join.Reparser, error) {
	if err := e.check(); err != nil {
		return nil, nil, err
	}
	opt = e.opts(opt)
	merged, extent, stats, err := e.joinPartitionPhase(ctx, src, &spec, opt)
	if err != nil {
		return nil, nil, err
	}
	reparse, err := e.reparser(ctx, src, opt)
	if err != nil {
		return nil, nil, err
	}
	jcfg, done := e.joinConfig(ctx, &spec, opt, reparse, pipeline.SourceKey(src.Bytes()))
	pairs, jstats, err := join.Run(merged.Sets[0], merged.Sets[1], jcfg)
	done()
	if err != nil {
		return nil, nil, err
	}
	return &JoinResult{
		Pairs:          pairs,
		PartitionStats: stats,
		JoinStats:      jstats,
		Extent:         extent,
	}, reparse, nil
}

// joinConfig assembles the join sweep configuration plus a release the
// caller must invoke once the sweep completes. Engines with a shared
// pool feed the sweep's cell-batch tasks into the pool's weighted
// dispatch queue (Config.Handle), so concurrent joins and queries
// contend for the same bounded worker set at the same scheduling
// quantum: a worker returns to the pool after every batch, making the
// join preemptible by other passes and weight-schedulable mid-sweep. A
// streaming-join consumer that stalls without calling Close still
// blocks the workers currently emitting to it, but never more than the
// in-flight batch window. The sweep registers with the pool's weighted
// scheduler under ctx's tenant — granted batch by batch by tenant
// weight — and the release deregisters it.
func (e *Engine) joinConfig(ctx context.Context, spec *JoinSpec, opt Options, reparse join.Reparser, srcKey uint64) (join.Config, func()) {
	cfg := join.Config{
		Ctx:           ctx,
		Predicate:     spec.Predicate,
		KernelRefine:  spec.kernelEligible,
		ReparseA:      reparse,
		ReparseB:      reparse,
		Workers:       opt.workers(),
		SortThreshold: spec.SortThreshold,
		BatchCells:    spec.BatchCells,
		OrderWindow:   spec.OrderWindow,
		CellLo:        spec.CellLo,
		CellHi:        spec.CellHi,
	}
	if e != nil && e.pool != nil {
		tenant := admission.Tenant(ctx)
		// Register(ctx, ...) also arms the drain-on-cancel watcher: a
		// cancelled join must not wait for pool workers to free up
		// before its accepted-but-ungranted batch tasks can run (the
		// sweep's task group counts them) — drained tasks see the
		// cancelled context and return immediately.
		cfg.Handle = e.pool.Register(ctx, tenant, e.weightFor(tenant), pipeline.JoinPass, srcKey)
		cfg.Workers = e.pool.Size()
		return cfg, cfg.Handle.Close
	}
	return cfg, func() {}
}

// joinPartitionPhase runs the first join pass: the parallel bounding
// pipeline plus spatial partition insertion, returning the merged
// partition sink.
func (e *Engine) joinPartitionPhase(ctx context.Context, src Source, spec *JoinSpec, opt Options) (*query.PartitionSink, geom.Box, pipeline.Stats, error) {
	if spec.Predicate == nil {
		spec.Predicate = geom.Intersects
		spec.kernelEligible = true
	}
	if spec.CellSize <= 0 {
		spec.CellSize = 1
	}
	// Geographic datasets use the world extent for the partition grid
	// (paper §5.6 sizes partitions in degrees).
	extent := geom.Box{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	grid := partition.NewGrid(extent, spec.CellSize)

	mask := spec.Mask
	if mask == nil {
		mask = func(*geom.Feature) uint8 { return query.SideA | query.SideB }
	}
	merged := query.NewPartitionSink(grid, spec.Store, mask)

	// Sidecar: with a validated index and a bounds-safe mask, the whole
	// partition pass collapses to a linear walk over the recorded
	// (id, offset, bbox) tape — no bytes are read. Otherwise a cold
	// pass may record the tape for next time (GeoJSON and OSM feed the
	// recorder from their single-threaded folds; the WKT partition pass
	// bins features inside parallel workers, so WKT tapes are recorded
	// by query passes only).
	ms, ix := e.sidecarFor(src)
	boundsSafe := spec.BoundsSafeMask || spec.Mask == nil
	if ms != nil && ix != nil && boundsSafe {
		ms.sc.hits.Add(1)
		t0 := time.Now()
		warmJoinPartition(ix, merged)
		st := pipeline.Stats{
			Bytes:    int64(len(src.Bytes())),
			Workers:  1,
			WallTime: time.Since(t0),
		}
		return merged, extent, st, nil
	}
	var rec *sidecar.Builder
	if ms != nil && ix == nil {
		ms.sc.misses.Add(1)
		if e.sidecar == SidecarReadWrite && src.DataFormat() != WKT {
			rec = ms.beginSidecarRecord()
		}
	}

	processFeature := func(fr *fragOf, f *geom.Feature) {
		if rec != nil {
			rec.Add(f.Offset, f.ID, featBox(f.Geom))
		}
		if spec.SeparatePartitionPhase {
			fr.feats = append(fr.feats, geom.Feature{
				ID: f.ID, Offset: f.Offset,
				Geom: boundsOnly(f.Geom),
			})
			return
		}
		fr.sink.Consume(f)
	}

	var firstErr error
	stats, err := e.partitionPass(ctx, src, opt, processFeature, func(fr *fragOf) {
		if fr.err != nil && firstErr == nil {
			firstErr = fr.err
			return
		}
		if spec.SeparatePartitionPhase {
			for i := range fr.feats {
				merged.Consume(&fr.feats[i])
			}
			return
		}
		if err := merged.Merge(fr.sink); err != nil && firstErr == nil {
			firstErr = err
		}
	}, func() *fragOf {
		fr := &fragOf{}
		if !spec.SeparatePartitionPhase {
			fr.sink = query.NewPartitionSink(grid, spec.Store, mask)
		}
		return fr
	})
	if err == nil {
		err = firstErr
	}
	if rec != nil {
		if err != nil {
			ms.abortSidecarRecord()
		} else {
			ms.finishSidecarRecord(rec)
		}
	}
	if err != nil {
		return nil, extent, stats, err
	}
	return merged, extent, stats, nil
}

// boundsOnly replaces a geometry by its MBR polygon (partition pass only
// needs bounds; keeps the separate-phase buffers small).
func boundsOnly(g geom.Geometry) geom.Geometry {
	if g == nil {
		return nil
	}
	return g.Bound().AsPolygon()
}

// fragOf is the per-block fragment of the join's partition pipeline.
type fragOf struct {
	sink  *query.PartitionSink
	feats []geom.Feature // separate-phase mode buffers bounds only
	err   error
}

// partitionPass runs the first (partition/bounding) pipeline for joins.
func (e *Engine) partitionPass(
	ctx context.Context,
	src Source,
	opt Options,
	processFeature func(fr *fragOf, f *geom.Feature),
	foldFrag func(fr *fragOf),
	newFrag func() *fragOf,
) (pipeline.Stats, error) {
	data := src.Bytes()
	switch src.DataFormat() {
	case GeoJSON:
		// Same PAT/FAT pipeline as queries, minus the fused Eval.
		foldSink := newFrag()
		st, _, _, err := e.runGeoJSONWith(
			ctx, data, &geojson.Config{PropKeys: opt.PropKeys}, opt,
			func(f geojson.FeatureOut) { processFeature(foldSink, &f.Feature) },
		)
		if err != nil {
			return st, err
		}
		foldFrag(foldSink)
		return st, nil
	case WKT:
		return pipeline.RunCtx(ctx, data,
			pipeline.StreamSplitterFunc(func(input []byte, yield func(int64) bool) {
				wkt.SplitLinesStream(input, opt.blockSize(), yield)
			}),
			e.exec(ctx, opt, data),
			func(b pipeline.Block) *fragOf {
				fr := newFrag()
				fr.err = wkt.EachLine(data, b.Start, b.End, func(line []byte, off int64) error {
					f, err := wkt.ParseLine(line, off)
					if err != nil {
						return err
					}
					processFeature(fr, &f)
					return nil
				})
				return fr
			},
			func(b pipeline.Block, fr *fragOf) { foldFrag(fr) },
		)
	default:
		fr := newFrag()
		st, err := e.runOSM(ctx, data, opt, func(f *geom.Feature) { processFeature(fr, f) })
		if err != nil {
			return st, err
		}
		foldFrag(fr)
		return st, nil
	}
}

// Combined executes the combined query of Table 3: the perimeter filters
// compile into the partition pipeline's side mask (an object may satisfy
// both and join with itself excluded), the join refines with
// ST_Intersects, and the per-pair ST_Union area aggregation runs over
// the joined stream.
func (e *Engine) Combined(ctx context.Context, src Source, spec CombinedSpec, opt Options) (*CombinedResult, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	// Admit here rather than in the inner join: the per-pair union-area
	// aggregation below is the expensive part and must stay inside the
	// admission slot.
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if spec.CellSize <= 0 {
		spec.CellSize = 1
	}
	mask := func(f *geom.Feature) uint8 {
		p := geom.Perimeter(f.Geom, spec.Dist)
		var m uint8
		if p > spec.T1 {
			m |= query.SideA
		}
		if p < spec.T2 {
			m |= query.SideB
		}
		return m
	}
	jr, reparse, err := e.join(ctx, src, JoinSpec{Mask: mask, CellSize: spec.CellSize}, opt)
	if err != nil {
		return nil, err
	}
	out := &CombinedResult{JoinResult: jr}
	for i, p := range jr.Pairs {
		if i&255 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if p.AOff == p.BOff {
			continue // an object satisfying both filters joins others, not itself
		}
		ga, err := reparse(p.AOff)
		if err != nil {
			return nil, err
		}
		gb, err := reparse(p.BOff)
		if err != nil {
			return nil, err
		}
		pa, okA := asPolygon(ga)
		pb, okB := asPolygon(gb)
		if !okA || !okB {
			continue // union aggregation defined on areal operands
		}
		out.Pairs++
		out.SumUnionArea += geom.SphericalArea(geom.PolyUnion(pa, pb))
	}
	return out, nil
}

// asPolygon extracts a polygon operand for the union aggregate.
func asPolygon(g geom.Geometry) (geom.Polygon, bool) {
	switch t := g.(type) {
	case geom.Polygon:
		return t, true
	case geom.MultiPolygon:
		if len(t) > 0 {
			return t[0], true
		}
	}
	return nil, false
}

// reparser returns the offset-based geometry re-parser for joins
// (paper §4.5: partitions store offsets, objects re-parse on demand).
func (e *Engine) reparser(ctx context.Context, src Source, opt Options) (join.Reparser, error) {
	data := src.Bytes()
	switch src.DataFormat() {
	case WKT:
		return func(off int64) (geom.Geometry, error) {
			end := off
			for end < int64(len(data)) && data[end] != '\n' {
				end++
			}
			f, err := wkt.ParseLine(data[off:end], off)
			if err != nil {
				return nil, err
			}
			return f.Geom, nil
		}, nil
	case GeoJSON:
		return func(off int64) (geom.Geometry, error) {
			return geojson.ReparseFeature(data, off)
		}, nil
	case OSMXML:
		// OSM XML cannot re-parse a single element in isolation (point
		// data lives in the node table, paper §5.3's random-access
		// penalty). Build an offset-keyed geometry table once.
		table := make(map[int64]geom.Geometry)
		_, err := e.runOSM(ctx, data, opt, func(f *geom.Feature) { table[f.Offset] = f.Geom })
		if err != nil {
			return nil, err
		}
		return func(off int64) (geom.Geometry, error) {
			g, ok := table[off]
			if !ok {
				return nil, fmt.Errorf("atgis: no OSM object at offset %d", off)
			}
			return g, nil
		}, nil
	default:
		return nil, fmt.Errorf("atgis: unsupported join format %v", src.DataFormat())
	}
}
