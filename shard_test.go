package atgis

import (
	"bytes"
	"context"
	"math"
	"testing"

	"atgis/internal/geom"
	"atgis/internal/query"
)

// shardSource materialises a synthetic dataset as a Source.
func shardSource(t *testing.T, format Format, n int) Source {
	t.Helper()
	ds := genDataset(t, format, n)
	src, err := ReaderSource(bytes.NewReader(ds.Data), format)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

// rawTiles carves [0, total) into k contiguous raw ranges the way the
// coordinator plans shards — deliberately ignorant of feature
// boundaries.
func rawTiles(total int64, k int) []ShardRange {
	step := total / int64(k)
	out := make([]ShardRange, k)
	var at int64
	for i := range out {
		end := at + step
		if i == k-1 {
			end = total
		}
		out[i] = ShardRange{Start: at, End: end}
		at = end
	}
	return out
}

func TestAlignShardIdempotentAndAdjacent(t *testing.T) {
	for _, format := range []Format{GeoJSON, WKT} {
		src := shardSource(t, format, 200)
		n := int64(len(src.Bytes()))
		for _, k := range []int{1, 2, 3, 7} {
			tiles := rawTiles(n, k)
			var prev ShardRange
			for i, raw := range tiles {
				a, err := AlignShard(src, raw)
				if err != nil {
					t.Fatalf("%v k=%d tile %d: %v", format, k, i, err)
				}
				again, err := AlignShard(src, a)
				if err != nil || again != a {
					t.Fatalf("%v: alignment not idempotent: %+v -> %+v (%v)", format, a, again, err)
				}
				if i > 0 && a.Start != prev.End {
					// Adjacent tiles align the same raw offset, so the
					// ranges must chain exactly — the no-gap/no-overlap
					// invariant the cluster handshake checks.
					t.Fatalf("%v k=%d: tile %d starts at %d, previous ended at %d",
						format, k, i, a.Start, prev.End)
				}
				prev = a
			}
			if prev.End != n {
				t.Fatalf("%v k=%d: last tile ends at %d, want %d", format, k, prev.End, n)
			}
		}
		// Degenerate ranges: inside the header/first feature, at EOF,
		// and with out-of-range offsets.
		for _, raw := range []ShardRange{{1, 2}, {n, n + 50}, {-3, 4}, {5, -1}} {
			if _, err := AlignShard(src, raw); err != nil {
				t.Fatalf("%v: align %+v: %v", format, raw, err)
			}
		}
	}
}

func TestAlignShardRejectsOSM(t *testing.T) {
	src := shardSource(t, OSMXML, 50)
	if _, err := AlignShard(src, ShardRange{0, 10}); err == nil {
		t.Fatal("OSM XML byte-range alignment should be rejected (global node table)")
	}
	pq, err := defaultEngine.Prepare(aggSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.ExecuteShard(context.Background(), src, ShardRange{0, 10}); err == nil {
		t.Fatal("ExecuteShard over OSM XML should fail")
	}
}

// TestExecuteShardTilesMatchExecute is the scatter-gather soundness
// invariant: summing shard results over ranges that tile the source
// reproduces the single-pass result — counts and MBR exactly,
// float sums to within regrouping error.
func TestExecuteShardTilesMatchExecute(t *testing.T) {
	for _, format := range []Format{GeoJSON, WKT} {
		src := shardSource(t, format, 300)
		eng := NewEngine(EngineConfig{Workers: 4})
		defer eng.Close()
		pq, err := eng.Prepare(aggSpec(), Options{BlockSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		want, err := pq.Execute(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if want.Res.Count == 0 {
			t.Fatalf("%v: reference pass matched nothing", format)
		}
		n := int64(len(src.Bytes()))
		for _, k := range []int{1, 2, 3, 5, 9} {
			var count, scanned int64
			var area, perim float64
			mbr := geom.EmptyBox()
			for i, raw := range rawTiles(n, k) {
				r, err := pq.ExecuteShard(context.Background(), src, raw)
				if err != nil {
					t.Fatalf("%v k=%d shard %d: %v", format, k, i, err)
				}
				count += r.Res.Count
				scanned += r.Res.Scanned
				area += r.Res.SumArea
				perim += r.Res.SumPerimeter
				mbr = mbr.Union(r.Res.MBR)
			}
			if count != want.Res.Count || scanned != want.Res.Scanned {
				t.Fatalf("%v k=%d: counts %d/%d, want %d/%d",
					format, k, count, scanned, want.Res.Count, want.Res.Scanned)
			}
			if mbr != want.Res.MBR {
				t.Fatalf("%v k=%d: MBR %+v, want %+v", format, k, mbr, want.Res.MBR)
			}
			if math.Abs(area-want.Res.SumArea) > 1e-9*math.Abs(want.Res.SumArea) {
				t.Fatalf("%v k=%d: area %v, want %v", format, k, area, want.Res.SumArea)
			}
			if math.Abs(perim-want.Res.SumPerimeter) > 1e-9*math.Abs(want.Res.SumPerimeter) {
				t.Fatalf("%v k=%d: perimeter %v, want %v", format, k, perim, want.Res.SumPerimeter)
			}
		}
	}
}

// TestStreamShardConcatenation: shard streams concatenate into exactly
// the single-pass stream, in the same input order — what lets the
// coordinator forward worker records verbatim.
func TestStreamShardConcatenation(t *testing.T) {
	for _, format := range []Format{GeoJSON, WKT} {
		src := shardSource(t, format, 250)
		eng := NewEngine(EngineConfig{Workers: 4})
		defer eng.Close()
		spec := &query.Spec{
			Kind: query.Containment,
			Ref:  query.ScaleBox(geom.Box{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}, 0.5).AsPolygon(),
			Pred: query.PredIntersects,
			Dist: geom.Haversine,
		}
		pq, err := eng.Prepare(spec, Options{BlockSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		collect := func(res *Results) []int64 {
			t.Helper()
			defer res.Close()
			var offs []int64
			for res.Next() {
				offs = append(offs, res.Feature().Offset)
			}
			if _, err := res.Summary(); err != nil {
				t.Fatal(err)
			}
			return offs
		}
		want := collect(pq.Stream(context.Background(), src))
		if len(want) == 0 {
			t.Fatalf("%v: reference stream matched nothing", format)
		}
		n := int64(len(src.Bytes()))
		for _, k := range []int{2, 4, 7} {
			var got []int64
			for _, raw := range rawTiles(n, k) {
				got = append(got, collect(pq.StreamShard(context.Background(), src, raw))...)
			}
			if len(got) != len(want) {
				t.Fatalf("%v k=%d: %d streamed, want %d", format, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v k=%d: offset[%d] = %d, want %d", format, k, i, got[i], want[i])
				}
			}
		}
	}
}
