module atgis

go 1.24
