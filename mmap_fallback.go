//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package atgis

import "os"

// mmapFile falls back to reading the whole file on platforms without
// a wired-up mmap; OpenMapped still works, it just loads eagerly.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := os.ReadFile(f.Name())
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
