// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each benchmark measures the steady-state cost of the
// corresponding experiment's inner operation; `atgis-bench` prints the
// full table/figure series.
package atgis

import (
	"bytes"
	"fmt"
	"testing"

	"atgis/internal/baselines/colscan"
	"atgis/internal/baselines/rtree"
	"atgis/internal/geom"
	"atgis/internal/lexer"
	"atgis/internal/partition"
	"atgis/internal/query"
	"atgis/internal/synth"
)

func benchDataset(b *testing.B, format Format, n int, sigma float64) *Dataset {
	b.Helper()
	cfg := synth.Config{Seed: 4242, N: n, MultiPolyFrac: 0.15, LineFrac: 0.15, MetadataBytes: 60}
	if sigma > 0 {
		cfg.Sigma = sigma
		cfg.MetadataBytes = 0
		cfg.MultiPolyFrac = 0
		cfg.LineFrac = 0
	}
	var buf bytes.Buffer
	var err error
	g := synth.New(cfg)
	switch format {
	case GeoJSON:
		err = g.WriteGeoJSON(&buf)
	case WKT:
		err = g.WriteWKT(&buf)
	case OSMXML:
		err = g.WriteOSMXML(&buf)
	}
	if err != nil {
		b.Fatal(err)
	}
	ds, err := FromBytes(buf.Bytes(), format)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchSpec(kind query.Kind) *query.Spec {
	s := &query.Spec{
		Kind: kind,
		Ref:  query.ScaleBox(synth.Extent, 0.25).AsPolygon(),
		Pred: query.PredIntersects,
		Dist: geom.Haversine,
	}
	if kind == query.Aggregation {
		s.WantArea, s.WantPerimeter = true, true
	} else {
		s.KeepMatches = true
	}
	return s
}

func runQueryBench(b *testing.B, ds *Dataset, kind query.Kind, mode Mode) {
	b.Helper()
	spec := benchSpec(kind)
	opt := Options{Mode: mode, BlockSize: 64 << 10}
	b.SetBytes(int64(len(ds.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Query(spec, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9aContainment covers Fig. 9a: containment scaling (run
// with -cpu 1,2,4 to sweep cores).
func BenchmarkFig9aContainment(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 2000, 0)
	for _, mode := range []Mode{PAT, FAT} {
		b.Run(mode.String(), func(b *testing.B) {
			runQueryBench(b, ds, query.Containment, mode)
		})
	}
}

// BenchmarkFig9bAggregation covers Fig. 9b: aggregation scaling.
func BenchmarkFig9bAggregation(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 2000, 0)
	for _, mode := range []Mode{PAT, FAT} {
		b.Run(mode.String(), func(b *testing.B) {
			runQueryBench(b, ds, query.Aggregation, mode)
		})
	}
}

// BenchmarkFig9cJoin covers Fig. 9c: join scaling.
func BenchmarkFig9cJoin(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 600, 0)
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	b.SetBytes(int64(len(ds.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Join(JoinSpec{Mask: mask, CellSize: 10}, Options{Mode: FAT, BlockSize: 64 << 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Systems covers Fig. 10: AT-GIS vs loaded baselines on
// the aggregation query (cluster emulation is excluded here because its
// simulated sleeps would dominate testing.B timing; atgis-bench -exp
// fig10 includes it).
func BenchmarkFig10Systems(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 2000, 0)
	spec := benchSpec(query.Aggregation)
	feats, err := ds.CollectFeatures(Options{})
	if err != nil {
		b.Fatal(err)
	}
	ref := spec.Ref

	b.Run("AT-GIS-PAT", func(b *testing.B) { runQueryBench(b, ds, query.Aggregation, PAT) })
	b.Run("AT-GIS-FAT", func(b *testing.B) { runQueryBench(b, ds, query.Aggregation, FAT) })
	b.Run("rtree-G", func(b *testing.B) {
		it := make([]rtree.Item, len(feats))
		for i, f := range feats {
			it[i] = rtree.Item{Box: f.Geom.Bound(), ID: f.ID, Geom: f.Geom}
		}
		tr := rtree.Build(it, 16)
		eng := &rtree.Engine{Tree: tr, Refine: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Aggregation(ref, geom.Haversine)
		}
	})
	b.Run("colscan-G", func(b *testing.B) {
		cs := colscan.Load(feats, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs.Aggregation(ref, geom.Haversine)
		}
	})
}

// BenchmarkFig11PartitionVsJoin covers Fig. 11: the two join phases.
func BenchmarkFig11PartitionVsJoin(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 600, 0)
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr, err := ds.Join(JoinSpec{Mask: mask, CellSize: 5}, Options{Mode: FAT, BlockSize: 64 << 10})
		if err != nil {
			b.Fatal(err)
		}
		_ = jr.PartitionStats
	}
}

// BenchmarkFig12Formats covers Fig. 12: per-format throughput.
func BenchmarkFig12Formats(b *testing.B) {
	for _, f := range []struct {
		name   string
		format Format
		mode   Mode
	}{
		{"GeoJSON-PAT", GeoJSON, PAT},
		{"GeoJSON-FAT", GeoJSON, FAT},
		{"WKT", WKT, PAT},
		{"OSMXML", OSMXML, PAT},
	} {
		b.Run(f.name, func(b *testing.B) {
			ds := benchDataset(b, f.format, 1500, 0)
			runQueryBench(b, ds, query.Aggregation, f.mode)
		})
	}
}

// BenchmarkFig13Filtering covers Fig. 13: streaming vs buffered filter
// stages under both distance methods at two selectivities.
func BenchmarkFig13Filtering(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 2000, 0)
	for _, dist := range []geom.DistanceMethod{geom.SphericalProjection, geom.Andoyer} {
		for _, frac := range []float64{0.5, 0.001} {
			for _, mode := range []query.FilterMode{query.Streaming, query.Buffered} {
				name := fmt.Sprintf("%v/sel=%g/%v", dist, frac, mode)
				b.Run(name, func(b *testing.B) {
					spec := &query.Spec{
						Kind: query.Aggregation,
						Ref:  query.ScaleBox(synth.Extent, frac).AsPolygon(),
						Pred: query.PredIntersects,
						Mode: mode, Dist: dist, WantPerimeter: true,
					}
					opt := Options{BlockSize: 64 << 10}
					b.SetBytes(int64(len(ds.Data)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := ds.Query(spec, opt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig14Skew covers Fig. 14: PAT vs FAT under σ skew.
func BenchmarkFig14Skew(b *testing.B) {
	for _, sigma := range []float64{0.5, 3} {
		ds := benchDataset(b, GeoJSON, 800, sigma)
		for _, mode := range []Mode{PAT, FAT} {
			b.Run(fmt.Sprintf("sigma=%g/%v", sigma, mode), func(b *testing.B) {
				runQueryBench(b, ds, query.Aggregation, mode)
			})
		}
	}
}

// BenchmarkFig15Partitioning covers Fig. 15: store kind and phase
// placement at two cell sizes.
func BenchmarkFig15Partitioning(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 600, 0)
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	for _, cell := range []float64{0.5, 4} {
		for _, store := range []partition.StoreKind{partition.ArrayStore, partition.ListStore} {
			for _, sep := range []bool{false, true} {
				name := fmt.Sprintf("cell=%g/%v/sep=%v", cell, store, sep)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						_, err := ds.Join(JoinSpec{
							Mask: mask, CellSize: cell, Store: store,
							SeparatePartitionPhase: sep,
						}, Options{Mode: FAT, BlockSize: 64 << 10})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable1Operators times representative Table-1 operators on a
// fixed polygon pair (the registry itself is verified by tests).
func BenchmarkTable1Operators(b *testing.B) {
	a := query.ScaleBox(synth.Extent, 0.1).AsPolygon()
	c := query.ScaleBox(synth.Extent, 0.15).AsPolygon()
	ops := []struct {
		name string
		fn   func()
	}{
		{"ST_Intersects", func() { geom.Intersects(a, c) }},
		{"ST_Within", func() { geom.Within(a, c) }},
		{"ST_Touches", func() { geom.Touches(a, c) }},
		{"ST_Envelope", func() { geom.Envelope(a) }},
		{"ST_ConvexHull", func() { geom.ConvexHull(a) }},
		{"ST_Distance", func() { geom.GeometryDistance(a, c, geom.Haversine) }},
		{"ST_Intersection", func() { geom.PolyIntersection(a, c) }},
		{"ST_Union", func() { geom.PolyUnion(a, c) }},
		{"ST_Buffer", func() { geom.Buffer(a, 0.1, 4) }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.fn()
			}
		})
	}
}

// BenchmarkLexerThroughput isolates the first pipeline stage: the JSON
// structural lexer (the dominant cost, paper §4.4 reports ≥90% of CPU
// time in parsing/extraction). Sequential covers the known-start-state
// scan; Speculative covers the full start-state set with convergence
// deduplication.
func BenchmarkLexerThroughput(b *testing.B) {
	ds := benchDataset(b, GeoJSON, 2000, 0)
	b.Run("Sequential", func(b *testing.B) {
		b.SetBytes(int64(len(ds.Data)))
		for i := 0; i < b.N; i++ {
			n := 0
			lexer.ScanJSON(lexer.JSONDefault, ds.Data, 0, func(lexer.Token) { n++ })
			if n == 0 {
				b.Fatal("no tokens")
			}
		}
	})
	b.Run("Speculative", func(b *testing.B) {
		// Pooled speculator: the steady-state path ProcessBlockFAT runs.
		s := lexer.AcquireSpeculator()
		defer lexer.ReleaseSpeculator(s)
		b.SetBytes(int64(len(ds.Data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if variants := s.Lex(ds.Data, 0); len(variants) == 0 {
				b.Fatal("no variants")
			}
		}
	})
}
