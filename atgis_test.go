package atgis

import (
	"bytes"
	"math"
	"testing"

	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/partition"
	"atgis/internal/query"
	"atgis/internal/synth"
	"atgis/internal/wkt"
)

func genDataset(t *testing.T, format Format, n int) *Dataset {
	t.Helper()
	g := synth.New(synth.Config{
		Seed: 12345, N: n,
		MultiPolyFrac: 0.15, LineFrac: 0.15, MetadataBytes: 40,
	})
	var buf bytes.Buffer
	var err error
	switch format {
	case GeoJSON:
		err = g.WriteGeoJSON(&buf)
	case WKT:
		err = g.WriteWKT(&buf)
	case OSMXML:
		// XML drops metadata and splits multipolygons differently; use
		// a polygon-only mix for cross-format comparisons.
		g = synth.New(synth.Config{Seed: 12345, N: n, MultiPolyFrac: 0.15, LineFrac: 0.15})
		err = g.WriteOSMXML(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromBytes(buf.Bytes(), format)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// newTestWKT wraps the wkt writer for test data construction.
func newTestWKT(buf *bytes.Buffer) *wkt.Writer { return wkt.NewWriter(buf) }

func aggSpec() *query.Spec {
	ref := query.ScaleBox(synth.Extent, 0.25).AsPolygon()
	return &query.Spec{
		Kind:     query.Aggregation,
		Ref:      ref,
		Pred:     query.PredIntersects,
		Dist:     geom.Haversine,
		WantArea: true, WantPerimeter: true, WantMBR: true,
	}
}

func TestFormatDetection(t *testing.T) {
	cases := []struct {
		data []byte
		want Format
	}{
		{[]byte(`{"type": "FeatureCollection"}`), GeoJSON},
		{[]byte("<?xml version=\"1.0\"?>\n<osm>"), OSMXML},
		{[]byte("42\tPOINT (1 2)\n"), WKT},
		{[]byte("-7\tPOINT (1 2)\n"), WKT},
	}
	for _, tc := range cases {
		ds, err := FromBytes(tc.data, AutoDetect)
		if err != nil {
			t.Fatalf("%q: %v", tc.data[:10], err)
		}
		if ds.Format != tc.want {
			t.Errorf("detect(%q) = %v, want %v", tc.data[:10], ds.Format, tc.want)
		}
	}
	if _, err := FromBytes([]byte("???"), AutoDetect); err == nil {
		t.Error("undetectable input should error")
	}
}

func TestQueryModesAgreeGeoJSON(t *testing.T) {
	ds := genDataset(t, GeoJSON, 300)
	spec := aggSpec()
	spec.KeepMatches = true

	results := map[string]*Result{}
	for _, mode := range []Mode{PAT, FAT} {
		for _, workers := range []int{1, 2, 4} {
			r, err := ds.Query(spec, Options{Mode: mode, Workers: workers, BlockSize: 4096})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			results[mode.String()] = r
			if r.Res.Count == 0 {
				t.Fatalf("%v: no matches", mode)
			}
			if r.Repaired > 0 || r.Reprocessed > 0 {
				t.Logf("%v: repaired=%d reprocessed=%d", mode, r.Repaired, r.Reprocessed)
			}
		}
	}
	pat, fat := results["PAT"].Res, results["FAT"].Res
	if pat.Count != fat.Count || pat.Scanned != fat.Scanned {
		t.Fatalf("counts differ: PAT %d/%d FAT %d/%d",
			pat.Count, pat.Scanned, fat.Count, fat.Scanned)
	}
	if math.Abs(pat.SumArea-fat.SumArea) > 1e-6*math.Abs(pat.SumArea) {
		t.Errorf("areas differ: %v vs %v", pat.SumArea, fat.SumArea)
	}
	if math.Abs(pat.SumPerimeter-fat.SumPerimeter) > 1e-6*math.Abs(pat.SumPerimeter) {
		t.Errorf("perimeters differ: %v vs %v", pat.SumPerimeter, fat.SumPerimeter)
	}
	if pat.MBR != fat.MBR {
		t.Errorf("MBRs differ: %+v vs %+v", pat.MBR, fat.MBR)
	}
	if len(pat.Matches) != len(fat.Matches) {
		t.Errorf("matches differ: %d vs %d", len(pat.Matches), len(fat.Matches))
	}
}

func TestQueryFormatsAgree(t *testing.T) {
	// GeoJSON and WKT encode identical features; aggregates must agree.
	dsG := genDataset(t, GeoJSON, 200)
	dsW := genDataset(t, WKT, 200)
	spec := aggSpec()
	rg, err := dsG.Query(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := dsW.Query(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rg.Res.Count != rw.Res.Count {
		t.Fatalf("counts: geojson %d wkt %d", rg.Res.Count, rw.Res.Count)
	}
	relDiff := math.Abs(rg.Res.SumArea-rw.Res.SumArea) / math.Abs(rg.Res.SumArea)
	if relDiff > 1e-9 {
		t.Errorf("area mismatch: %v vs %v", rg.Res.SumArea, rw.Res.SumArea)
	}
}

func TestQueryOSMXML(t *testing.T) {
	ds := genDataset(t, OSMXML, 150)
	spec := aggSpec()
	r, err := ds.Query(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Res.Count == 0 || r.Res.SumArea <= 0 {
		t.Fatalf("OSM query result empty: %+v", r.Res)
	}
	// Scanned must equal the number of top-level objects (ways not in
	// relations + relations).
	if r.Res.Scanned == 0 {
		t.Error("nothing scanned")
	}
}

func TestJoinAcrossFormats(t *testing.T) {
	for _, format := range []Format{WKT, GeoJSON} {
		ds := genDataset(t, format, 150)
		// Split by id parity.
		mask := func(f *geom.Feature) uint8 {
			if f.ID%2 == 0 {
				return query.SideA
			}
			return query.SideB
		}
		jr, err := ds.Join(JoinSpec{Mask: mask, CellSize: 30}, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		// Oracle: nested loop over collected features.
		feats, err := ds.CollectFeatures(Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		var as, bs []geom.Feature
		for _, f := range feats {
			if f.ID%2 == 0 {
				as = append(as, f)
			} else {
				bs = append(bs, f)
			}
		}
		want := join.NestedLoop(as, bs, geom.Intersects)
		if len(jr.Pairs) != len(want) {
			t.Fatalf("%v: join pairs = %d, oracle = %d", format, len(jr.Pairs), len(want))
		}
		for i := range want {
			if jr.Pairs[i].AOff != want[i].AOff || jr.Pairs[i].BOff != want[i].BOff {
				t.Fatalf("%v: pair %d differs", format, i)
			}
		}
	}
}

func TestJoinPartitionOptions(t *testing.T) {
	// Dense deterministic grid of overlapping squares guarantees pairs.
	var buf bytes.Buffer
	{
		w := newTestWKT(&buf)
		id := int64(0)
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				x := float64(i) * 3
				y := float64(j) * 3
				f := geom.Feature{ID: id, Geom: geom.Polygon{geom.Ring{
					{X: x, Y: y}, {X: x + 4, Y: y}, {X: x + 4, Y: y + 4},
					{X: x, Y: y + 4}, {X: x, Y: y},
				}}}
				w.WriteFeature(&f)
				id++
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := FromBytes(buf.Bytes(), WKT)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(f *geom.Feature) uint8 {
		if f.ID%2 == 0 {
			return query.SideA
		}
		return query.SideB
	}
	var baseline int
	for _, sep := range []bool{false, true} {
		for _, store := range []partition.StoreKind{partition.ArrayStore, partition.ListStore} {
			jr, err := ds.Join(JoinSpec{
				Mask: mask, CellSize: 15, Store: store,
				SeparatePartitionPhase: sep,
			}, Options{Workers: 2})
			if err != nil {
				t.Fatalf("sep=%v store=%v: %v", sep, store, err)
			}
			if baseline == 0 {
				baseline = len(jr.Pairs)
				if baseline == 0 {
					t.Fatal("no join results; bad test data")
				}
				continue
			}
			if len(jr.Pairs) != baseline {
				t.Fatalf("sep=%v store=%v: pairs %d != %d", sep, store, len(jr.Pairs), baseline)
			}
		}
	}
}

func TestCombinedQuery(t *testing.T) {
	// Overlapping squares with two sizes: big ones pass the >T1 filter,
	// small ones the <T2 filter; overlapping big/small pairs join.
	var buf bytes.Buffer
	w := newTestWKT(&buf)
	id := int64(0)
	for i := 0; i < 6; i++ {
		x := float64(i) * 10
		big := geom.Feature{ID: id, Geom: geom.Polygon{geom.Ring{
			{X: x, Y: 0}, {X: x + 8, Y: 0}, {X: x + 8, Y: 8}, {X: x, Y: 8}, {X: x, Y: 0},
		}}}
		w.WriteFeature(&big)
		id++
		small := geom.Feature{ID: id, Geom: geom.Polygon{geom.Ring{
			{X: x + 1, Y: 1}, {X: x + 2, Y: 1}, {X: x + 2, Y: 2}, {X: x + 1, Y: 2}, {X: x + 1, Y: 1},
		}}}
		w.WriteFeature(&small)
		id++
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ds, err := FromBytes(buf.Bytes(), WKT)
	if err != nil {
		t.Fatal(err)
	}
	// Perimeters: big ≈ 32° ≈ 3.5e6 m; small ≈ 4° ≈ 4.4e5 m.
	cr, err := ds.Combined(CombinedSpec{
		T1: 2e6, T2: 1e6, Dist: geom.Haversine, CellSize: 15,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each big square contains its small square: 6 pairs.
	if cr.Pairs != 6 {
		t.Fatalf("combined pairs = %d, want 6", cr.Pairs)
	}
	// Union area of containing pair = area of the big square; 6 of them.
	oneBig := geom.SphericalArea(geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 8, Y: 8}, {X: 0, Y: 8}, {X: 0, Y: 0},
	}})
	rel := math.Abs(cr.SumUnionArea-6*oneBig) / (6 * oneBig)
	if rel > 0.05 {
		t.Errorf("union area = %v, want ≈ %v (rel err %v)", cr.SumUnionArea, 6*oneBig, rel)
	}
}

func TestCollectFeaturesSorted(t *testing.T) {
	ds := genDataset(t, GeoJSON, 50)
	feats, err := ds.CollectFeatures(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 50 {
		t.Fatalf("features = %d", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i].Offset <= feats[i-1].Offset {
			t.Fatal("features not sorted by offset")
		}
	}
}

func TestQueryWorkerCountInvariance(t *testing.T) {
	ds := genDataset(t, GeoJSON, 100)
	spec := aggSpec()
	var want int64 = -1
	for _, w := range []int{1, 2, 3, 8} {
		for _, bs := range []int{512, 4096, 1 << 20} {
			r, err := ds.Query(spec, Options{Mode: FAT, Workers: w, BlockSize: bs})
			if err != nil {
				t.Fatal(err)
			}
			if want < 0 {
				want = r.Res.Count
				continue
			}
			if r.Res.Count != want {
				t.Fatalf("w=%d bs=%d: count %d != %d", w, bs, r.Res.Count, want)
			}
		}
	}
}
