//go:build (darwin || freebsd || netbsd || openbsd || dragonfly) && !linux

package atgis

func madviseSequential([]byte) error { return nil }
