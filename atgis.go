// Package atgis is a highly-parallel spatial query processor over raw
// spatial data files, reproducing "AT-GIS: Highly Parallel Spatial Query
// Processing with Associative Transducers" (Ogden, Thomas, Pietzuch —
// SIGMOD 2016).
//
// AT-GIS executes containment, aggregation and join queries directly on
// GeoJSON, WKT and OpenStreetMap XML input with no loading or indexing
// phase. Parsing, extraction and query operators are fused into one
// data-parallel pipeline using associative transducers: every worker runs
// the whole pipeline over an arbitrary block of the input and per-block
// fragments merge associatively.
//
// The API is layered:
//
//   - A Source owns the raw byte view and its lifecycle: OpenMapped
//     memory-maps a file, FromBytes wraps a buffer, ReaderSource buffers
//     piped input.
//   - An Engine owns a shared worker pool and runs any number of
//     concurrent queries against one or more open Sources.
//   - A PreparedQuery is compiled once from a query.Spec and executed
//     many times with context cancellation; results either summarise in
//     one blocking call (Execute) or stream feature-by-feature (Stream).
//
// Quickstart:
//
//	src, err := atgis.OpenMapped("data.geojson", atgis.AutoDetect)
//	defer src.Close()
//	eng := atgis.NewEngine(atgis.EngineConfig{})
//	defer eng.Close()
//	pq, err := eng.Prepare(&query.Spec{
//	        Kind: query.Aggregation,
//	        Ref:  region,
//	        Pred: query.PredIntersects,
//	        WantArea: true, WantPerimeter: true,
//	}, atgis.Options{})
//	res, err := pq.Execute(ctx, src)
//	fmt.Println(res.Res.Count, res.Res.SumArea, res.Stats.ThroughputMBs())
//
// The original Dataset type and its Open/Query/Join methods remain as
// deprecated wrappers over a default Engine.
package atgis

import (
	"context"
	"runtime"

	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/partition"
	"atgis/internal/pipeline"
	"atgis/internal/query"
)

// Mode selects the parallel execution strategy (paper §3.5, §5):
// fully-associative transducers speculate over parser states and split
// anywhere; partially-associative transducers search for known-state
// boundaries and run optimised sequential parsers per block.
type Mode uint8

// Execution modes.
const (
	// PAT is partially-associative execution (AT-GIS-PAT).
	PAT Mode = iota
	// FAT is fully-associative execution (AT-GIS-FAT).
	FAT
)

func (m Mode) String() string {
	if m == FAT {
		return "FAT"
	}
	return "PAT"
}

// Options tunes execution.
type Options struct {
	// Workers is the number of processing threads for engines without a
	// shared pool (0 = GOMAXPROCS). Engines built with NewEngine size
	// their pool once and ignore this.
	Workers int
	// BlockSize is the target block size in bytes (0 = the engine
	// default, which itself defaults to 1 MiB).
	BlockSize int
	// Mode selects FAT or PAT execution (GeoJSON only; WKT and OSM XML
	// always use boundary splitting).
	Mode Mode
	// PropKeys lists metadata property keys to extract (GeoJSON).
	PropKeys []string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) blockSize() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return 1 << 20
}

// Result bundles a query result with execution statistics.
type Result struct {
	Res   *query.Result
	Stats pipeline.Stats
	// Repaired counts PAT blocks re-parsed after mis-splits; Reprocessed
	// counts FAT blocks whose speculation was invalidated.
	Repaired, Reprocessed int
}

// JoinSpec describes a two-pass spatial join (Table 3): the dataset is
// split into two sides by Mask and intersecting pairs across sides are
// reported.
type JoinSpec struct {
	// Mask routes each feature to side A (bit query.SideA) and/or side B.
	Mask func(f *geom.Feature) uint8
	// CellSize is the spatial partition size in degrees (paper §5.6).
	CellSize float64
	// Store selects the partition container (array vs linked list).
	Store partition.StoreKind
	// Predicate refines candidate pairs; nil means ST_Intersects.
	Predicate func(a, b geom.Geometry) bool
	// SeparatePartitionPhase runs partition insertion as a sequential
	// phase after the parallel bounding pipeline instead of merging
	// per-block partition sets (paper Fig. 15 (c)/(d)).
	SeparatePartitionPhase bool
	// SortThreshold bounds the join's candidate batches.
	SortThreshold int
	// BatchCells is the sweep's scheduling quantum in grid cells (0 =
	// join.DefaultBatchCells). Each batch is one task on the engine's
	// worker pool, so smaller batches preempt sooner at more dispatch
	// overhead.
	BatchCells int
	// OrderWindow, when positive, makes JoinStream emit pairs in
	// deterministic cell order: the sweep looks at most this many cells
	// past the emission head, holding completed batches until their
	// turn. Larger windows keep more workers busy on skewed grids at
	// the cost of buffering; zero streams pairs in nondeterministic
	// order (the default). Engine.Join ignores it — the buffered join
	// is globally sorted already.
	OrderWindow int
	// CellLo / CellHi restrict the join sweep to the partition-grid cell
	// band [CellLo, CellHi) — the join's horizontal-sharding unit used by
	// atgis-serve's cluster mode. The reference-point dedup makes each
	// result pair owned by exactly one cell, so bands that tile the grid
	// partition the pair set exactly (and ordered bands concatenate into
	// full-sweep cell order). CellHi zero means the whole grid. The
	// partition phase still scans the full input: sharding saves sweep
	// work, not parsing.
	CellLo, CellHi int
	// BoundsSafeMask declares that Mask depends only on a feature's ID,
	// Offset and bounding box — never on coordinates beyond the bounds.
	// Sidecar-enabled engines then rebuild the partition sets straight
	// from the index tape (id, offset, bbox), skipping the partition
	// pass over the raw bytes entirely. A mask that inspects real
	// geometry (e.g. perimeter filters) must leave this false. A nil
	// Mask is always bounds-safe.
	BoundsSafeMask bool

	// kernelEligible records that Predicate was defaulted to
	// geom.Intersects by the engine: only then may the sweep substitute
	// the batched slab kernels (join.Config.KernelRefine) — a
	// caller-supplied predicate, even one that happens to equal
	// geom.Intersects, is opaque and runs scalar.
	kernelEligible bool
}

// JoinResult carries the joined pairs and phase timings (Fig. 11).
type JoinResult struct {
	Pairs          []join.Pair
	PartitionStats pipeline.Stats
	JoinStats      join.Stats
	Extent         geom.Box
}

// CombinedSpec is Table 3's combined query: two perimeter-filtered
// sides of the dataset are spatially joined and the areas of the
// pairwise unions are summed:
//
//	SELECT ST_Area(ST_Union(d1.geom, d2.geom))
//	FROM data d1, data d2
//	WHERE ST_Perimeter(d1.geom) > T1 AND ST_Perimeter(d2.geom) < T2
//	  AND ST_Intersects(d1.geom, d2.geom)
type CombinedSpec struct {
	// T1 and T2 are the perimeter thresholds (meters) for sides A and B.
	T1, T2 float64
	// Dist selects the perimeter computation.
	Dist geom.DistanceMethod
	// CellSize is the join partition size in degrees.
	CellSize float64
}

// CombinedResult reports the combined query outcome.
type CombinedResult struct {
	Pairs        int
	SumUnionArea float64 // m², spherical
	JoinResult   *JoinResult
}

// Query executes a single-pass containment or aggregation query over
// the dataset.
//
// Deprecated: prepare the query on an Engine and call Execute, which
// adds context cancellation, shared worker pools and streaming results.
func (d *Dataset) Query(spec *query.Spec, opt Options) (*Result, error) {
	return defaultEngine.Query(context.Background(), d, spec, opt)
}

// Join executes the two-pass PBSM join (Fig. 6 then Fig. 8).
//
// Deprecated: use Engine.Join (or Engine.JoinStream for unbuffered
// pair iteration).
func (d *Dataset) Join(spec JoinSpec, opt Options) (*JoinResult, error) {
	return defaultEngine.Join(context.Background(), d, spec, opt)
}

// Combined executes the combined filter+join+union-area query.
//
// Deprecated: use Engine.Combined.
func (d *Dataset) Combined(spec CombinedSpec, opt Options) (*CombinedResult, error) {
	return defaultEngine.Combined(context.Background(), d, spec, opt)
}

// CollectFeatures parses the whole dataset into features (used by the
// baseline engines, which require loaded data — the phase AT-GIS skips).
//
// Deprecated: use Engine.CollectFeatures.
func (d *Dataset) CollectFeatures(opt Options) ([]geom.Feature, error) {
	return defaultEngine.CollectFeatures(context.Background(), d, opt)
}
