// Package atgis is a highly-parallel spatial query processor over raw
// spatial data files, reproducing "AT-GIS: Highly Parallel Spatial Query
// Processing with Associative Transducers" (Ogden, Thomas, Pietzuch —
// SIGMOD 2016).
//
// AT-GIS executes containment, aggregation and join queries directly on
// GeoJSON, WKT and OpenStreetMap XML input with no loading or indexing
// phase. Parsing, extraction and query operators are fused into one
// data-parallel pipeline using associative transducers: every worker runs
// the whole pipeline over an arbitrary block of the input and per-block
// fragments merge associatively.
//
// Quickstart:
//
//	ds, err := atgis.Open("data.geojson")
//	res, err := ds.Query(&query.Spec{
//	        Kind: query.Aggregation,
//	        Ref:  region,
//	        Pred: query.PredIntersects,
//	        WantArea: true, WantPerimeter: true,
//	}, atgis.Options{})
//	fmt.Println(res.Res.Count, res.Res.SumArea, res.Stats.ThroughputMBs())
package atgis

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sort"

	"atgis/internal/geojson"
	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/osmxml"
	"atgis/internal/partition"
	"atgis/internal/pipeline"
	"atgis/internal/query"
	"atgis/internal/wkt"
)

// Format identifies the raw input format.
type Format uint8

// Supported input formats.
const (
	AutoDetect Format = iota
	GeoJSON
	WKT
	OSMXML
)

func (f Format) String() string {
	switch f {
	case GeoJSON:
		return "geojson"
	case WKT:
		return "wkt"
	case OSMXML:
		return "osmxml"
	default:
		return "auto"
	}
}

// Mode selects the parallel execution strategy (paper §3.5, §5):
// fully-associative transducers speculate over parser states and split
// anywhere; partially-associative transducers search for known-state
// boundaries and run optimised sequential parsers per block.
type Mode uint8

// Execution modes.
const (
	// PAT is partially-associative execution (AT-GIS-PAT).
	PAT Mode = iota
	// FAT is fully-associative execution (AT-GIS-FAT).
	FAT
)

func (m Mode) String() string {
	if m == FAT {
		return "FAT"
	}
	return "PAT"
}

// Options tunes execution.
type Options struct {
	// Workers is the number of processing threads (0 = GOMAXPROCS).
	Workers int
	// BlockSize is the target block size in bytes (0 = 1 MiB).
	BlockSize int
	// Mode selects FAT or PAT execution (GeoJSON only; WKT and OSM XML
	// always use boundary splitting).
	Mode Mode
	// PropKeys lists metadata property keys to extract (GeoJSON).
	PropKeys []string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) blockSize() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return 1 << 20
}

// Dataset is a raw spatial input held in memory (the paper reads from a
// RAM disk; this implementation loads the file once and operates on the
// shared buffer, which also lets joins re-parse objects by offset).
type Dataset struct {
	Data   []byte
	Format Format
}

// Open loads a dataset file, detecting the format from its content when
// format is AutoDetect.
func Open(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(data, AutoDetect)
}

// FromBytes wraps an in-memory dataset.
func FromBytes(data []byte, format Format) (*Dataset, error) {
	if format == AutoDetect {
		format = detect(data)
	}
	if format == AutoDetect {
		return nil, fmt.Errorf("atgis: cannot detect input format")
	}
	return &Dataset{Data: data, Format: format}, nil
}

func detect(data []byte) Format {
	head := data
	if len(head) > 512 {
		head = head[:512]
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	switch {
	case bytes.HasPrefix(trimmed, []byte("<?xml")), bytes.HasPrefix(trimmed, []byte("<osm")):
		return OSMXML
	case bytes.HasPrefix(trimmed, []byte("{")), bytes.HasPrefix(trimmed, []byte("[")):
		return GeoJSON
	case len(trimmed) > 0 && (trimmed[0] >= '0' && trimmed[0] <= '9' || trimmed[0] == '-'):
		return WKT
	default:
		return AutoDetect
	}
}

// Result bundles a query result with execution statistics.
type Result struct {
	Res   *query.Result
	Stats pipeline.Stats
	// Repaired counts PAT blocks re-parsed after mis-splits; Reprocessed
	// counts FAT blocks whose speculation was invalidated.
	Repaired, Reprocessed int
}

// Query executes a single-pass containment or aggregation query (Fig. 6:
// parse/extract → transform/filter → aggregate) in one parallel pass over
// the raw input.
func (d *Dataset) Query(spec *query.Spec, opt Options) (*Result, error) {
	spec.Normalize()
	out := &Result{Res: query.NewResult()}
	sink := func(f geojson.FeatureOut) {
		v, _ := f.Val.(query.FeatureVal)
		out.Res.Absorb(spec, &f.Feature, v)
	}
	consume := func(f *geom.Feature) {
		out.Res.Absorb(spec, f, query.Apply(spec, f))
	}
	var err error
	switch d.Format {
	case GeoJSON:
		out.Stats, out.Repaired, out.Reprocessed, err = d.runGeoJSON(spec, opt, sink)
	case WKT:
		out.Stats, err = d.runWKT(opt, consume)
	case OSMXML:
		out.Stats, err = d.runOSM(opt, consume)
	default:
		err = fmt.Errorf("atgis: unsupported format %v", d.Format)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// geojsonConfig builds the extraction config with the per-feature query
// evaluation fused into the parallel phase.
func (d *Dataset) geojsonConfig(spec *query.Spec, opt Options) *geojson.Config {
	return &geojson.Config{
		PropKeys: opt.PropKeys,
		Eval: func(f *geom.Feature) any {
			if spec == nil {
				return query.FeatureVal{}
			}
			return query.Apply(spec, f)
		},
	}
}

func (d *Dataset) runGeoJSON(spec *query.Spec, opt Options, sink func(geojson.FeatureOut)) (pipeline.Stats, int, int, error) {
	return d.runGeoJSONWith(d.geojsonConfig(spec, opt), opt, sink)
}

// runGeoJSONWith executes the GeoJSON pipeline (FAT or PAT per opt.Mode)
// with an explicit extraction config, streaming features into sink. It
// returns the pipeline stats plus the repaired (PAT) and reprocessed
// (FAT) block counts. Both the query path and the join partition pass
// share this one pipeline assembly.
func (d *Dataset) runGeoJSONWith(cfg *geojson.Config, opt Options, sink func(geojson.FeatureOut)) (pipeline.Stats, int, int, error) {
	if opt.Mode == FAT {
		fold := geojson.NewFold(d.Data, cfg, sink)
		st := pipeline.Run(d.Data,
			pipeline.FixedSplitter{BlockSize: opt.blockSize()},
			opt.workers(),
			func(b pipeline.Block) geojson.BlockResult {
				return geojson.ProcessBlockFAT(d.Data, b.Start, b.End, cfg)
			},
			func(b pipeline.Block, r geojson.BlockResult) { fold.Add(r) },
		)
		return st, 0, fold.Reprocessed, fold.Finish()
	}
	// PAT: boundary-searching splitter plus optimised per-block parser.
	// The boundary scan streams cuts so block parsing starts while the
	// scan is still running.
	fold := geojson.NewPATFold(d.Data, cfg, sink)
	headerDone := false
	st := pipeline.Run(d.Data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64)) {
			geojson.FindFeatureBoundariesStream(input, opt.blockSize(), yield)
		}),
		opt.workers(),
		func(b pipeline.Block) *geojson.PATBlockResult {
			if b.Index == 0 {
				return nil // header handled by the fold
			}
			r := geojson.ProcessBlockPAT(d.Data, b.Start, b.End, cfg)
			return &r
		},
		func(b pipeline.Block, r *geojson.PATBlockResult) {
			if r == nil {
				fold.Header(b.End)
				headerDone = true
				return
			}
			if !headerDone {
				fold.Header(0)
				headerDone = true
			}
			fold.Add(*r)
		},
	)
	return st, fold.Repaired, 0, fold.Finish(int64(len(d.Data)))
}

func (d *Dataset) runWKT(opt Options, consume func(*geom.Feature)) (pipeline.Stats, error) {
	type frag struct {
		feats []geom.Feature
		err   error
	}
	var firstErr error
	st := pipeline.Run(d.Data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64)) {
			wkt.SplitLinesStream(input, opt.blockSize(), yield)
		}),
		opt.workers(),
		func(b pipeline.Block) frag {
			var fr frag
			fr.err = wkt.EachLine(d.Data, b.Start, b.End, func(line []byte, off int64) error {
				f, err := wkt.ParseLine(line, off)
				if err != nil {
					return err
				}
				fr.feats = append(fr.feats, f)
				return nil
			})
			return fr
		},
		func(b pipeline.Block, fr frag) {
			if fr.err != nil && firstErr == nil {
				firstErr = fr.err
			}
			for i := range fr.feats {
				consume(&fr.feats[i])
			}
		},
	)
	return st, firstErr
}

// runOSM executes the multi-pass OSM XML pipeline: pass 1 builds the
// node table and collects ways/relations in parallel; pass 2 assembles
// geometries and evaluates the query.
func (d *Dataset) runOSM(opt Options, consume func(*geom.Feature)) (pipeline.Stats, error) {
	nodes := osmxml.NewNodeTable()
	wayTab := osmxml.NewWayTable()
	type frag struct {
		ways []*osmxml.Way
		rels []*osmxml.Relation
		err  error
	}
	var firstErr error
	var allWays []*osmxml.Way
	var allRels []*osmxml.Relation
	st := pipeline.Run(d.Data,
		pipeline.StreamSplitterFunc(func(input []byte, yield func(int64)) {
			osmxml.SplitElementsStream(input, opt.blockSize(), yield)
		}),
		opt.workers(),
		func(b pipeline.Block) frag {
			var fr frag
			fr.err = osmxml.ParseBlock(d.Data, b.Start, b.End, &osmxml.Handler{
				OnNode: nodes.Put,
				OnWay:  func(w *osmxml.Way) { fr.ways = append(fr.ways, w) },
				OnRelation: func(r *osmxml.Relation) {
					fr.rels = append(fr.rels, r)
				},
			})
			return fr
		},
		func(b pipeline.Block, fr frag) {
			if fr.err != nil && firstErr == nil {
				firstErr = fr.err
			}
			allWays = append(allWays, fr.ways...)
			allRels = append(allRels, fr.rels...)
		},
	)
	if firstErr != nil {
		return st, firstErr
	}
	for _, w := range allWays {
		wayTab.Put(w)
	}
	// Pass 2: assemble + evaluate. Ways referenced by multipolygon
	// relations are consumed by the relation, not emitted standalone.
	inRelation := make(map[int64]bool)
	for _, r := range allRels {
		for _, m := range r.Members {
			if m.Type == "way" {
				inRelation[m.Ref] = true
			}
		}
	}
	for _, w := range allWays {
		if inRelation[w.ID] {
			continue
		}
		g, err := osmxml.AssembleWay(w, nodes)
		if err != nil {
			return st, err
		}
		f := geom.Feature{ID: w.ID, Geom: g, Offset: w.Off}
		consume(&f)
	}
	for _, r := range allRels {
		g, err := osmxml.AssembleRelation(r, wayTab, nodes)
		if err != nil {
			return st, err
		}
		f := geom.Feature{ID: r.ID, Geom: g, Offset: r.Off}
		consume(&f)
	}
	return st, nil
}

// CollectFeatures parses the whole dataset into features (used by the
// baseline engines, which require loaded data — the phase AT-GIS skips).
func (d *Dataset) CollectFeatures(opt Options) ([]geom.Feature, error) {
	var feats []geom.Feature
	consume := func(f *geom.Feature) { feats = append(feats, *f) }
	var err error
	switch d.Format {
	case GeoJSON:
		_, _, _, err = d.runGeoJSON(nil, opt, func(f geojson.FeatureOut) {
			feats = append(feats, f.Feature)
		})
	case WKT:
		_, err = d.runWKT(opt, consume)
	case OSMXML:
		_, err = d.runOSM(opt, consume)
	default:
		err = fmt.Errorf("atgis: unsupported format %v", d.Format)
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].Offset < feats[j].Offset })
	return feats, nil
}

// JoinSpec describes a two-pass spatial join (Table 3): the dataset is
// split into two sides by Mask and intersecting pairs across sides are
// reported.
type JoinSpec struct {
	// Mask routes each feature to side A (bit query.SideA) and/or side B.
	Mask func(f *geom.Feature) uint8
	// CellSize is the spatial partition size in degrees (paper §5.6).
	CellSize float64
	// Store selects the partition container (array vs linked list).
	Store partition.StoreKind
	// Predicate refines candidate pairs; nil means ST_Intersects.
	Predicate func(a, b geom.Geometry) bool
	// SeparatePartitionPhase runs partition insertion as a sequential
	// phase after the parallel bounding pipeline instead of merging
	// per-block partition sets (paper Fig. 15 (c)/(d)).
	SeparatePartitionPhase bool
	// SortThreshold bounds the join's candidate batches.
	SortThreshold int
}

// JoinResult carries the joined pairs and phase timings (Fig. 11).
type JoinResult struct {
	Pairs          []join.Pair
	PartitionStats pipeline.Stats
	JoinStats      join.Stats
	Extent         geom.Box
}

// Join executes the two-pass PBSM join (Fig. 6 then Fig. 8).
func (d *Dataset) Join(spec JoinSpec, opt Options) (*JoinResult, error) {
	if spec.Predicate == nil {
		spec.Predicate = geom.Intersects
	}
	if spec.CellSize <= 0 {
		spec.CellSize = 1
	}
	// Geographic datasets use the world extent for the partition grid
	// (paper §5.6 sizes partitions in degrees).
	extent := geom.Box{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	grid := partition.NewGrid(extent, spec.CellSize)

	mask := spec.Mask
	if mask == nil {
		mask = func(*geom.Feature) uint8 { return query.SideA | query.SideB }
	}
	merged := query.NewPartitionSink(grid, spec.Store, mask)

	processFeature := func(fr *fragOf, f *geom.Feature) {
		if spec.SeparatePartitionPhase {
			fr.feats = append(fr.feats, geom.Feature{
				ID: f.ID, Offset: f.Offset,
				Geom: boundsOnly(f.Geom),
			})
			return
		}
		fr.sink.Consume(f)
	}

	var firstErr error
	stats := d.partitionPass(opt, spec, processFeature, func(fr *fragOf) {
		if fr.err != nil && firstErr == nil {
			firstErr = fr.err
			return
		}
		if spec.SeparatePartitionPhase {
			for i := range fr.feats {
				merged.Consume(&fr.feats[i])
			}
			return
		}
		if err := merged.Merge(fr.sink); err != nil && firstErr == nil {
			firstErr = err
		}
	}, func() *fragOf {
		fr := &fragOf{}
		if !spec.SeparatePartitionPhase {
			fr.sink = query.NewPartitionSink(grid, spec.Store, mask)
		}
		return fr
	})
	if firstErr != nil {
		return nil, firstErr
	}

	reparse, err := d.reparser(opt)
	if err != nil {
		return nil, err
	}
	pairs, jstats, err := join.Run(merged.Sets[0], merged.Sets[1], join.Config{
		Predicate:     spec.Predicate,
		ReparseA:      reparse,
		ReparseB:      reparse,
		Workers:       opt.workers(),
		SortThreshold: spec.SortThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &JoinResult{
		Pairs:          pairs,
		PartitionStats: stats,
		JoinStats:      jstats,
		Extent:         extent,
	}, nil
}

// boundsOnly replaces a geometry by its MBR polygon (partition pass only
// needs bounds; keeps the separate-phase buffers small).
func boundsOnly(g geom.Geometry) geom.Geometry {
	if g == nil {
		return nil
	}
	return g.Bound().AsPolygon()
}

// fragOf is the per-block fragment of the join's partition pipeline.
type fragOf struct {
	sink  *query.PartitionSink
	feats []geom.Feature // separate-phase mode buffers bounds only
	err   error
}

// partitionPass runs the first (partition/bounding) pipeline for joins.
func (d *Dataset) partitionPass(
	opt Options,
	spec JoinSpec,
	processFeature func(fr *fragOf, f *geom.Feature),
	foldFrag func(fr *fragOf),
	newFrag func() *fragOf,
) pipeline.Stats {
	switch d.Format {
	case GeoJSON:
		// Same PAT/FAT pipeline as queries, minus the fused Eval.
		foldSink := newFrag()
		st, _, _, err := d.runGeoJSONWith(
			&geojson.Config{PropKeys: opt.PropKeys}, opt,
			func(f geojson.FeatureOut) { processFeature(foldSink, &f.Feature) },
		)
		if err != nil {
			foldSink.err = err
		}
		foldFrag(foldSink)
		return st
	case WKT:
		return pipeline.Run(d.Data,
			pipeline.StreamSplitterFunc(func(input []byte, yield func(int64)) {
				wkt.SplitLinesStream(input, opt.blockSize(), yield)
			}),
			opt.workers(),
			func(b pipeline.Block) *fragOf {
				fr := newFrag()
				fr.err = wkt.EachLine(d.Data, b.Start, b.End, func(line []byte, off int64) error {
					f, err := wkt.ParseLine(line, off)
					if err != nil {
						return err
					}
					processFeature(fr, &f)
					return nil
				})
				return fr
			},
			func(b pipeline.Block, fr *fragOf) { foldFrag(fr) },
		)
	default:
		fr := newFrag()
		st, err := d.runOSM(opt, func(f *geom.Feature) { processFeature(fr, f) })
		if err != nil {
			fr.err = err
		}
		foldFrag(fr)
		return st
	}
}

// CombinedSpec is Table 3's combined query: two perimeter-filtered
// sides of the dataset are spatially joined and the areas of the
// pairwise unions are summed:
//
//	SELECT ST_Area(ST_Union(d1.geom, d2.geom))
//	FROM data d1, data d2
//	WHERE ST_Perimeter(d1.geom) > T1 AND ST_Perimeter(d2.geom) < T2
//	  AND ST_Intersects(d1.geom, d2.geom)
type CombinedSpec struct {
	// T1 and T2 are the perimeter thresholds (meters) for sides A and B.
	T1, T2 float64
	// Dist selects the perimeter computation.
	Dist geom.DistanceMethod
	// CellSize is the join partition size in degrees.
	CellSize float64
}

// CombinedResult reports the combined query outcome.
type CombinedResult struct {
	Pairs        int
	SumUnionArea float64 // m², spherical
	JoinResult   *JoinResult
}

// Combined executes the combined query: the filters compile into the
// partition pipeline's side mask (an object may satisfy both and join
// with itself excluded), the join refines with ST_Intersects, and the
// per-pair ST_Union area aggregation runs over the joined stream — the
// more complex pipeline of paper §5's combined query.
func (d *Dataset) Combined(spec CombinedSpec, opt Options) (*CombinedResult, error) {
	if spec.CellSize <= 0 {
		spec.CellSize = 1
	}
	mask := func(f *geom.Feature) uint8 {
		p := geom.Perimeter(f.Geom, spec.Dist)
		var m uint8
		if p > spec.T1 {
			m |= query.SideA
		}
		if p < spec.T2 {
			m |= query.SideB
		}
		return m
	}
	jr, err := d.Join(JoinSpec{Mask: mask, CellSize: spec.CellSize}, opt)
	if err != nil {
		return nil, err
	}
	reparse, err := d.reparser(opt)
	if err != nil {
		return nil, err
	}
	out := &CombinedResult{JoinResult: jr}
	for _, p := range jr.Pairs {
		if p.AOff == p.BOff {
			continue // an object satisfying both filters joins others, not itself
		}
		ga, err := reparse(p.AOff)
		if err != nil {
			return nil, err
		}
		gb, err := reparse(p.BOff)
		if err != nil {
			return nil, err
		}
		pa, okA := asPolygon(ga)
		pb, okB := asPolygon(gb)
		if !okA || !okB {
			continue // union aggregation defined on areal operands
		}
		out.Pairs++
		out.SumUnionArea += geom.SphericalArea(geom.PolyUnion(pa, pb))
	}
	return out, nil
}

// asPolygon extracts a polygon operand for the union aggregate.
func asPolygon(g geom.Geometry) (geom.Polygon, bool) {
	switch t := g.(type) {
	case geom.Polygon:
		return t, true
	case geom.MultiPolygon:
		if len(t) > 0 {
			return t[0], true
		}
	}
	return nil, false
}

// reparser returns the offset-based geometry re-parser for joins
// (paper §4.5: partitions store offsets, objects re-parse on demand).
func (d *Dataset) reparser(opt Options) (join.Reparser, error) {
	switch d.Format {
	case WKT:
		return func(off int64) (geom.Geometry, error) {
			end := off
			for end < int64(len(d.Data)) && d.Data[end] != '\n' {
				end++
			}
			f, err := wkt.ParseLine(d.Data[off:end], off)
			if err != nil {
				return nil, err
			}
			return f.Geom, nil
		}, nil
	case GeoJSON:
		return func(off int64) (geom.Geometry, error) {
			return geojson.ReparseFeature(d.Data, off)
		}, nil
	case OSMXML:
		// OSM XML cannot re-parse a single element in isolation (point
		// data lives in the node table, paper §5.3's random-access
		// penalty). Build an offset-keyed geometry table once.
		table := make(map[int64]geom.Geometry)
		_, err := d.runOSM(opt, func(f *geom.Feature) { table[f.Offset] = f.Geom })
		if err != nil {
			return nil, err
		}
		return func(off int64) (geom.Geometry, error) {
			g, ok := table[off]
			if !ok {
				return nil, fmt.Errorf("atgis: no OSM object at offset %d", off)
			}
			return g, nil
		}, nil
	default:
		return nil, fmt.Errorf("atgis: unsupported join format %v", d.Format)
	}
}
