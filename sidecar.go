package atgis

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"atgis/internal/geom"
	"atgis/internal/query"
	"atgis/internal/sidecar"
)

// SidecarMode controls an Engine's use of persistent per-source
// structural indexes (see EngineConfig.Sidecar).
type SidecarMode uint8

// Sidecar modes.
const (
	// SidecarOff ignores sidecar files entirely (the default).
	SidecarOff SidecarMode = iota
	// SidecarRead uses a valid existing `<path>.atgx` to run warm
	// passes, but never writes one.
	SidecarRead
	// SidecarReadWrite additionally records the structural tape during
	// the first successful cold pass over a mapped source and persists
	// it atomically next to the file.
	SidecarReadWrite
)

func (m SidecarMode) String() string {
	switch m {
	case SidecarRead:
		return "read"
	case SidecarReadWrite:
		return "readwrite"
	default:
		return "off"
	}
}

// ParseSidecarMode parses the CLI/server flag form: off, read or
// readwrite.
func ParseSidecarMode(s string) (SidecarMode, error) {
	switch s {
	case "off", "":
		return SidecarOff, nil
	case "read":
		return SidecarRead, nil
	case "readwrite":
		return SidecarReadWrite, nil
	}
	return SidecarOff, fmt.Errorf("atgis: unknown sidecar mode %q (off, read, readwrite)", s)
}

// SidecarMode reports the engine's configured sidecar mode.
func (e *Engine) SidecarMode() SidecarMode {
	if e == nil {
		return SidecarOff
	}
	return e.sidecar
}

// errWarmAbort marks a warm pass that discovered a mid-pass
// inconsistency between the sidecar tape and the bytes (a repair
// crossing a pruned range). Load-time validation makes this
// near-impossible; when it happens the sidecar is rejected and
// aggregate passes silently rerun cold.
var errWarmAbort = errors.New("atgis: warm pass abandoned: sidecar inconsistent with source bytes")

// sidecarState is the per-mapping sidecar bookkeeping hanging off a
// MappedSource. All fields except the counters are guarded by mu.
type sidecarState struct {
	mu        sync.Mutex
	loaded    bool           // a load was attempted
	idx       *sidecar.Index // non-nil = validated and usable
	loadErr   error          // why the on-disk sidecar was rejected
	writeErr  error          // why the last persist attempt failed
	built     bool           // recorded and activated by this process
	recording bool           // a cold pass currently owns the recorder

	hashOnce sync.Once
	hash     uint64

	hits   atomic.Int64 // passes served warm from the index
	misses atomic.Int64 // eligible passes that had to run cold
}

// SidecarStats is the externally visible sidecar state of one mapped
// source, surfaced by atgis-serve's /v1/stats.
type SidecarStats struct {
	// State is "none" (no usable sidecar seen yet), "active" (loaded or
	// built and validated) or "rejected" (present but stale/corrupt).
	State string `json:"state"`
	// Features is the tape length of the active index.
	Features int `json:"features,omitempty"`
	// Hits counts passes served warm; Misses counts sidecar-eligible
	// passes that ran cold.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Built reports that this process recorded and activated the index.
	Built bool `json:"built,omitempty"`
	// LoadError / WriteError carry the last rejection / persist failure.
	LoadError  string `json:"load_error,omitempty"`
	WriteError string `json:"write_error,omitempty"`
}

// SidecarStats snapshots the source's sidecar state. All zero values
// until a sidecar-enabled engine runs a pass over the source.
func (s *MappedSource) SidecarStats() SidecarStats {
	s.sc.mu.Lock()
	defer s.sc.mu.Unlock()
	st := SidecarStats{
		State:  "none",
		Hits:   s.sc.hits.Load(),
		Misses: s.sc.misses.Load(),
		Built:  s.sc.built,
	}
	if s.sc.idx != nil {
		st.State = "active"
		st.Features = s.sc.idx.N()
	} else if s.sc.loadErr != nil {
		st.State = "rejected"
	}
	if s.sc.loadErr != nil {
		st.LoadError = s.sc.loadErr.Error()
	}
	if s.sc.writeErr != nil {
		st.WriteError = s.sc.writeErr.Error()
	}
	return st
}

// srcHash returns the content hash of the mapped bytes, computed once
// per mapping (the mapping is immutable short of external truncation,
// which is already a fault).
func (s *MappedSource) srcHash() uint64 {
	s.sc.hashOnce.Do(func() { s.sc.hash = sidecar.Hash(s.data) })
	return s.sc.hash
}

// sidecarFormat maps the source format to the sidecar format byte
// (0 = this format cannot carry a sidecar).
func sidecarFormat(f Format) uint8 {
	switch f {
	case GeoJSON:
		return sidecar.FormatGeoJSON
	case WKT:
		return sidecar.FormatWKT
	case OSMXML:
		return sidecar.FormatOSMXML
	}
	return 0
}

// sidecarIndex returns the validated index for this mapping, loading
// `<path>.atgx` on first use. A missing file is simply "none"; a
// stale, corrupt or unreadable one is recorded as rejected. Never
// trusts without validating: size and mtime from a fresh stat, then
// the full content hash of the mapped bytes.
func (s *MappedSource) sidecarIndex() *sidecar.Index {
	s.sc.mu.Lock()
	defer s.sc.mu.Unlock()
	if !s.sc.loaded {
		s.sc.loaded = true
		s.sc.idx, s.sc.loadErr = s.loadSidecar()
	}
	return s.sc.idx
}

func (s *MappedSource) loadSidecar() (*sidecar.Index, error) {
	ix, err := sidecar.Load(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if ix.Format != sidecarFormat(s.format) {
		return nil, fmt.Errorf("%w: sidecar format %d, source is %v", sidecar.ErrStale, ix.Format, s.format)
	}
	st, err := os.Stat(s.path)
	if err != nil {
		return nil, err
	}
	if err := ix.Validate(int64(len(s.data)), st.ModTime().UnixNano(), s.srcHash); err != nil {
		return nil, err
	}
	return ix, nil
}

// rejectSidecar drops the active index after a mid-pass inconsistency
// so every subsequent pass runs cold (and, under readwrite, rebuilds).
func (s *MappedSource) rejectSidecar(err error) {
	s.sc.mu.Lock()
	defer s.sc.mu.Unlock()
	s.sc.idx = nil
	s.sc.loadErr = err
}

// beginSidecarRecord claims the single recorder slot for a cold pass,
// returning nil when another pass holds it, an index is already
// active, or the format cannot carry a sidecar. The returned builder
// must only be fed from the pass's merge fold (single-threaded).
func (s *MappedSource) beginSidecarRecord() *sidecar.Builder {
	s.sc.mu.Lock()
	defer s.sc.mu.Unlock()
	f := sidecarFormat(s.format)
	if f == 0 || s.sc.recording || s.sc.idx != nil {
		return nil
	}
	s.sc.recording = true
	return sidecar.NewBuilder(f)
}

// abortSidecarRecord releases the recorder claim after a failed or
// cancelled pass without activating anything.
func (s *MappedSource) abortSidecarRecord() {
	s.sc.mu.Lock()
	s.sc.recording = false
	s.sc.mu.Unlock()
}

// finishSidecarRecord freezes the recorded tape after a successful
// cold pass, activates it for this mapping, and persists it
// atomically. Persist failures are recorded (WriteError) but never
// fail the pass that recorded the tape — the in-memory index is
// already valid.
func (s *MappedSource) finishSidecarRecord(b *sidecar.Builder) {
	st, statErr := os.Stat(s.path)
	var ix *sidecar.Index
	var buildErr error
	if statErr == nil {
		ix, buildErr = b.Build(int64(len(s.data)), st.ModTime().UnixNano(), s.srcHash())
	}
	s.sc.mu.Lock()
	defer s.sc.mu.Unlock()
	s.sc.recording = false
	switch {
	case statErr != nil:
		s.sc.writeErr = statErr
	case buildErr != nil:
		s.sc.writeErr = buildErr
	default:
		s.sc.idx = ix
		s.sc.loadErr = nil
		s.sc.built = true
		s.sc.writeErr = sidecar.Write(s.path, ix)
	}
}

// sidecarFor resolves the source's sidecar under the engine's mode:
// the mapped source (nil when sidecars don't apply at all) and its
// validated index (nil when absent or rejected — run cold).
func (e *Engine) sidecarFor(src Source) (*MappedSource, *sidecar.Index) {
	if e == nil || e.sidecar == SidecarOff {
		return nil, nil
	}
	ms, ok := src.(*MappedSource)
	if !ok || ms.path == "" {
		return nil, nil
	}
	return ms, ms.sidecarIndex()
}

// featBox records a feature's bounding box for the tape;
// geometry-less features record the empty box, which warm passes
// prune and partition rebuilds skip — exactly what a cold pass does
// with a nil geometry.
func featBox(g geom.Geometry) geom.Box {
	if g == nil {
		return geom.EmptyBox()
	}
	return g.Bound()
}

// warmJoinPartition rebuilds the join's merged partition sink from the
// sidecar tape, replacing the whole first join pass: one linear walk
// over (id, offset, bbox) in consume order reproduces exactly the
// per-cell insertion order of a cold partition pass, because cold
// passes insert features in that same order and an entry's box is the
// recorded Bound(). Only safe when the side mask depends on nothing
// beyond id/offset/bounds (JoinSpec.BoundsSafeMask or no mask).
func warmJoinPartition(ix *sidecar.Index, merged *query.PartitionSink) {
	f := geom.Feature{}
	for i := range ix.Offs {
		bx := ix.Boxes[i]
		if bx.IsEmpty() {
			continue
		}
		f = geom.Feature{ID: ix.IDs[i], Offset: ix.Offs[i], Geom: bx.AsPolygon()}
		merged.Consume(&f)
	}
}

// pruneWindow reports whether the spec allows bbox pruning and against
// which window. Every predicate except disjoint requires the candidate
// MBR to intersect the reference MBR (see Evaluator.match), so a
// feature whose recorded bbox misses the window can be skipped without
// parsing. Disjoint inverts that, and a nil reference matches
// everything: no pruning.
func pruneWindow(spec *query.Spec) (geom.Box, bool) {
	if spec == nil || spec.Ref == nil || spec.Pred == query.PredDisjoint {
		return geom.Box{}, false
	}
	return spec.RefBox, true
}
