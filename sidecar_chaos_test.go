package atgis

// Chaos tests for the sidecar fault sites: the sidecar is an
// accelerator, never a dependency. A poisoned load must degrade to a
// cold pass with identical results and a healthy source; a poisoned
// write must never leave a partial `.atgx` (or temp litter) visible and
// must not fail the pass that recorded the tape.
//
// The faultinject registry is process-global, so these tests never run
// in t.Parallel() and always disarm with t.Cleanup(faultinject.Reset).

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atgis/internal/faultinject"
	"atgis/internal/query"
	"atgis/internal/sidecar"
)

// coldReference runs the case matrix's aggregation query with sidecars
// off.
func coldReference(t *testing.T, path string) string {
	t.Helper()
	eng := NewEngine(EngineConfig{Workers: 2})
	defer eng.Close()
	src := mustOpen(t, path)
	res, err := eng.Query(context.Background(), src, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2, BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return renderQueryResult(res)
}

func TestChaosSidecarLoadPanicFallsBackCold(t *testing.T) {
	path := writeSidecarCorpus(t, GeoJSON)
	cold := coldReference(t, path)

	// Build a perfectly good sidecar first, so the poisoned load is the
	// only thing standing between the pass and a warm run.
	buildEng := NewEngine(EngineConfig{Workers: 2, Sidecar: SidecarReadWrite})
	defer buildEng.Close()
	buildSrc := mustOpen(t, path)
	if _, err := buildEng.Query(context.Background(), buildSrc, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if st := buildSrc.SidecarStats(); !st.Built || st.WriteError != "" {
		t.Fatalf("sidecar build failed: %+v", st)
	}

	for _, mode := range []struct {
		name  string
		fault func()
	}{
		{"plain panic", func() { panic("disk returned garbage") }},
		{"simulated memory fault", func() { panic(faultinject.SimulatedFault{Site: "sidecar.load"}) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			fault := mode.fault
			faultinject.Set("sidecar.load", func(label string, index int64) {
				if label == filepath.Base(path) {
					fault()
				}
			})
			eng := NewEngine(EngineConfig{Workers: 2, Sidecar: SidecarRead})
			defer eng.Close()
			src := mustOpen(t, path)
			res, err := eng.Query(context.Background(), src, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2, BlockSize: 8 << 10})
			if err != nil {
				t.Fatalf("pass failed instead of degrading to cold: %v", err)
			}
			if got := renderQueryResult(res); got != cold {
				t.Fatalf("degraded pass diverged from cold:\ncold:\n%s\ngot:\n%s", cold, got)
			}
			st := src.SidecarStats()
			if st.State != "rejected" || st.Hits != 0 {
				t.Fatalf("poisoned load was not rejected: %+v", st)
			}
			if !strings.Contains(st.LoadError, "panic") {
				t.Fatalf("load error does not surface the panic: %q", st.LoadError)
			}
			// The fault is confined to the sidecar: the same mapping keeps
			// serving once the hook disarms (the rejection is sticky for
			// this mapping, which is correct — a fresh mapping reloads).
			faultinject.Reset()
			if _, err := eng.Query(context.Background(), src, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2}); err != nil {
				t.Fatalf("source unhealthy after sidecar rejection: %v", err)
			}
			fresh := mustOpen(t, path)
			if _, err := eng.Query(context.Background(), fresh, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2}); err != nil {
				t.Fatal(err)
			}
			if st := fresh.SidecarStats(); st.State != "active" || st.Hits == 0 {
				t.Fatalf("sidecar not served once the fault cleared: %+v", st)
			}
		})
	}
}

func TestChaosSidecarWritePanicLeavesNoPartialFile(t *testing.T) {
	path := writeSidecarCorpus(t, WKT)
	cold := coldReference(t, path)
	dir := filepath.Dir(path)

	t.Cleanup(faultinject.Reset)
	faultinject.Set("sidecar.write", func(label string, index int64) {
		panic("no space left on device")
	})

	eng := NewEngine(EngineConfig{Workers: 2, Sidecar: SidecarReadWrite})
	defer eng.Close()
	src := mustOpen(t, path)
	res, err := eng.Query(context.Background(), src, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2, BlockSize: 8 << 10})
	if err != nil {
		t.Fatalf("recording pass failed because its persist failed: %v", err)
	}
	if got := renderQueryResult(res); got != cold {
		t.Fatalf("recording pass diverged from cold:\ncold:\n%s\ngot:\n%s", cold, got)
	}

	// The failed persist is surfaced, but the in-memory index stays
	// active: this process still gets its warm passes.
	st := src.SidecarStats()
	if st.State != "active" || !st.Built {
		t.Fatalf("in-memory index lost to a persist failure: %+v", st)
	}
	if !strings.Contains(st.WriteError, "panic") {
		t.Fatalf("write error does not surface the panic: %q", st.WriteError)
	}
	if _, err := eng.Query(context.Background(), src, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if st := src.SidecarStats(); st.Hits == 0 {
		t.Fatalf("no warm hit from the in-memory index after persist failure: %+v", st)
	}

	// Nothing partial is visible on disk: no `.atgx`, no temp litter.
	if _, err := os.Stat(sidecar.PathFor(path)); !os.IsNotExist(err) {
		t.Fatalf(".atgx visible after failed write: %v", err)
	}
	tmp, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temp files left behind by failed write: %v", tmp)
	}

	// Once the fault clears, a fresh mapping rebuilds and persists.
	faultinject.Reset()
	fresh := mustOpen(t, path)
	if _, err := eng.Query(context.Background(), fresh, diffSpec(query.PredIntersects, 0.2, false), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if st := fresh.SidecarStats(); st.WriteError != "" || !st.Built {
		t.Fatalf("rebuild after cleared fault failed: %+v", st)
	}
	if _, err := os.Stat(sidecar.PathFor(path)); err != nil {
		t.Fatalf("no .atgx after the fault cleared: %v", err)
	}
}
