package atgis

// Differential correctness harness for the persistent sidecar index:
// every query mode and both join flavours run cold (SidecarOff), warm
// (index recorded, then served from memory and from disk) and against
// deliberately stale sidecars (bit-flipped, truncated, source mtime
// bumped). The rendered output — NDJSON record lines plus the
// result-bearing summary fields — must be byte-identical in every
// configuration.
//
// The rendering deliberately covers only result-bearing state: Count,
// Scanned, the aggregate sums (compared as exact IEEE-754 bit
// patterns — the warm pass absorbs matched features in the same input
// order as a cold pass, so even float accumulation must agree
// bit-for-bit), the MBR, the buffered match list, streamed records and
// join pairs. Execution statistics (wall time, MB/s, block and worker
// counts, repair counters) are volatile by nature and excluded.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"atgis/internal/geom"
	"atgis/internal/query"
	"atgis/internal/sidecar"
	"atgis/internal/synth"
)

// writeSidecarCorpus writes a deterministic synthetic dataset in the
// given format and returns its path (inside a per-test temp dir, so
// `.atgx` siblings are cleaned up with it).
func writeSidecarCorpus(t *testing.T, format Format) string {
	t.Helper()
	dir := t.TempDir()
	var name string
	switch format {
	case GeoJSON:
		name = "corpus.geojson"
	case WKT:
		name = "corpus.wkt"
	case OSMXML:
		name = "corpus.osm"
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	g := synth.New(synth.Config{Seed: 20160626, N: 400, MultiPolyFrac: 0.15, LineFrac: 0.15, MetadataBytes: 40})
	switch format {
	case GeoJSON:
		err = g.WriteGeoJSON(f)
	case WKT:
		err = g.WriteWKT(f)
	case OSMXML:
		err = g.WriteOSMXML(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}

func bits(f float64) string { return fmt.Sprintf("%016x", math.Float64bits(f)) }

func renderBox(b geom.Box) string {
	return bits(b.MinX) + "," + bits(b.MinY) + "," + bits(b.MaxX) + "," + bits(b.MaxY)
}

// renderQueryResult renders the result-bearing fields of a query run.
func renderQueryResult(r *Result) string {
	var b strings.Builder
	res := r.Res
	fmt.Fprintf(&b, "count=%d scanned=%d area=%s perim=%s mbr=%s\n",
		res.Count, res.Scanned, bits(res.SumArea), bits(res.SumPerimeter), renderBox(res.MBR))
	for _, m := range res.Matches {
		fmt.Fprintf(&b, "match id=%d off=%d box=%s\n", m.ID, m.Offset, renderBox(m.Box))
	}
	return b.String()
}

// diffRecord is one NDJSON line of a streamed query: the match identity
// plus its per-feature aggregate contributions as exact bit patterns.
type diffRecord struct {
	ID    int64  `json:"id"`
	Off   int64  `json:"offset"`
	Area  string `json:"area_bits"`
	Perim string `json:"perimeter_bits"`
}

// sidecarDiffCase runs one query or join flavour and renders its full
// observable output as a comparable string.
type sidecarDiffCase struct {
	name string
	run  func(t *testing.T, eng *Engine, src Source) string
}

func diffSpec(pred query.Predicate, scale float64, keep bool) *query.Spec {
	kind := query.Aggregation
	if keep {
		kind = query.Containment
	}
	return &query.Spec{
		Kind:     kind,
		Ref:      query.ScaleBox(synth.Extent, scale).AsPolygon(),
		Pred:     pred,
		Dist:     geom.Haversine,
		WantArea: true, WantPerimeter: true, WantMBR: true,
		KeepMatches: keep,
	}
}

func queryCase(name string, spec *query.Spec, mode Mode) sidecarDiffCase {
	return sidecarDiffCase{name: name, run: func(t *testing.T, eng *Engine, src Source) string {
		t.Helper()
		res, err := eng.Query(context.Background(), src, spec, Options{Mode: mode, Workers: 4, BlockSize: 8 << 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return renderQueryResult(res)
	}}
}

func streamCase(name string, spec *query.Spec, mode Mode) sidecarDiffCase {
	return sidecarDiffCase{name: name, run: func(t *testing.T, eng *Engine, src Source) string {
		t.Helper()
		pq, err := eng.Prepare(spec, Options{Mode: mode, Workers: 4, BlockSize: 8 << 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var b strings.Builder
		res := pq.Stream(context.Background(), src)
		for res.Next() {
			f, v := res.Feature(), res.Value()
			line, err := json.Marshal(diffRecord{ID: f.ID, Off: f.Offset, Area: bits(v.Area), Perim: bits(v.Perimeter)})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		sum, err := res.Summary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b.WriteString(renderQueryResult(sum))
		return b.String()
	}}
}

func paritySideMask(f *geom.Feature) uint8 {
	if f.ID%2 == 0 {
		return query.SideA
	}
	return query.SideB
}

func joinCase(name string) sidecarDiffCase {
	return sidecarDiffCase{name: name, run: func(t *testing.T, eng *Engine, src Source) string {
		t.Helper()
		spec := JoinSpec{Mask: paritySideMask, CellSize: 10, BoundsSafeMask: true}
		jr, err := eng.Join(context.Background(), src, spec, Options{Workers: 4, BlockSize: 8 << 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var pairs []struct{ a, b int64 }
		for _, p := range jr.Pairs {
			pairs = append(pairs, struct{ a, b int64 }{p.AOff, p.BOff})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].a != pairs[j].a {
				return pairs[i].a < pairs[j].a
			}
			return pairs[i].b < pairs[j].b
		})
		var b strings.Builder
		fmt.Fprintf(&b, "pairs=%d candidates=%d duplicates=%d\n",
			len(jr.Pairs), jr.JoinStats.Candidates, jr.JoinStats.Duplicates)
		for _, p := range pairs {
			fmt.Fprintf(&b, "pair a=%d b=%d\n", p.a, p.b)
		}
		return b.String()
	}}
}

// orderedJoinCase streams with OrderWindow: the emission sequence
// itself is deterministic, so it is compared verbatim — the strongest
// form of the warm/cold equivalence claim.
func orderedJoinCase(name string) sidecarDiffCase {
	return sidecarDiffCase{name: name, run: func(t *testing.T, eng *Engine, src Source) string {
		t.Helper()
		spec := JoinSpec{Mask: func(*geom.Feature) uint8 { return query.SideA | query.SideB },
			CellSize: 5, BatchCells: 2, OrderWindow: 16, BoundsSafeMask: true}
		stream := eng.JoinStream(context.Background(), src, spec, Options{Workers: 4, BlockSize: 8 << 10})
		var b strings.Builder
		for stream.Next() {
			p := stream.Pair()
			line, err := json.Marshal(struct {
				AID  int64 `json:"a_id"`
				BID  int64 `json:"b_id"`
				AOff int64 `json:"a_off"`
				BOff int64 `json:"b_off"`
			}{p.AID, p.BID, p.AOff, p.BOff})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		sum, err := stream.Summary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&b, "candidates=%d duplicates=%d\n", sum.JoinStats.Candidates, sum.JoinStats.Duplicates)
		return b.String()
	}}
}

func sidecarDiffCases() []sidecarDiffCase {
	return []sidecarDiffCase{
		// Selective window: most features prune on a warm pass.
		queryCase("agg-pat-intersects", diffSpec(query.PredIntersects, 0.2, false), PAT),
		queryCase("agg-fat-intersects", diffSpec(query.PredIntersects, 0.2, false), FAT),
		queryCase("agg-within", diffSpec(query.PredWithin, 0.35, false), PAT),
		// Disjoint inverts the MBR prefilter: the warm pass may not prune
		// and must scan everything.
		queryCase("agg-disjoint", diffSpec(query.PredDisjoint, 0.2, false), PAT),
		queryCase("contain-buffered", diffSpec(query.PredIntersects, 0.25, true), PAT),
		streamCase("contain-stream-pat", diffSpec(query.PredIntersects, 0.25, false), PAT),
		streamCase("contain-stream-fat", diffSpec(query.PredIntersects, 0.25, false), FAT),
		joinCase("join-buffered"),
		orderedJoinCase("join-ordered-stream"),
	}
}

// runAllCases executes the full matrix against (eng, src) and returns
// the rendered output per case name.
func runAllCases(t *testing.T, eng *Engine, src Source) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, c := range sidecarDiffCases() {
		out[c.name] = c.run(t, eng, src)
	}
	return out
}

func compareCases(t *testing.T, scenario string, got, want map[string]string) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if g != w {
			t.Errorf("%s: case %s diverged from cold reference\ncold:\n%s\ngot:\n%s", scenario, name, w, g)
		}
	}
}

func mustOpen(t *testing.T, path string) *MappedSource {
	t.Helper()
	src, err := OpenMapped(path, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func TestSidecarDifferential(t *testing.T) {
	for _, format := range []Format{GeoJSON, WKT, OSMXML} {
		format := format
		t.Run(format.String(), func(t *testing.T) {
			path := writeSidecarCorpus(t, format)

			coldEng := NewEngine(EngineConfig{Workers: 4})
			defer coldEng.Close()
			cold := runAllCases(t, coldEng, mustOpen(t, path))

			// First pass on a readwrite engine records the tape; later
			// cases on the same mapping already run warm.
			rwEng := NewEngine(EngineConfig{Workers: 4, Sidecar: SidecarReadWrite})
			defer rwEng.Close()
			rwSrc := mustOpen(t, path)
			compareCases(t, "readwrite first run", runAllCases(t, rwEng, rwSrc), cold)
			st := rwSrc.SidecarStats()
			if !st.Built || st.State != "active" {
				t.Fatalf("sidecar not recorded on the readwrite engine: %+v", st)
			}
			if st.WriteError != "" {
				t.Fatalf("sidecar persist failed: %s", st.WriteError)
			}
			if _, err := os.Stat(sidecar.PathFor(path)); err != nil {
				t.Fatalf("no .atgx on disk after a readwrite pass: %v", err)
			}

			// Second run over the same mapping: everything eligible is warm.
			compareCases(t, "readwrite warm run", runAllCases(t, rwEng, rwSrc), cold)
			if st := rwSrc.SidecarStats(); st.Hits == 0 {
				t.Fatalf("no warm hits on the second readwrite run: %+v", st)
			}

			// Fresh mapping on a read-only engine: served from disk.
			roEng := NewEngine(EngineConfig{Workers: 4, Sidecar: SidecarRead})
			defer roEng.Close()
			roSrc := mustOpen(t, path)
			compareCases(t, "read-only warm run", runAllCases(t, roEng, roSrc), cold)
			st = roSrc.SidecarStats()
			if st.State != "active" || st.Hits == 0 || st.Built {
				t.Fatalf("read-only engine did not serve from the on-disk sidecar: %+v", st)
			}

			// Stale scenarios: each one gets a fresh mapping (validation is
			// cached per mapping) on a read-only engine, must silently fall
			// back to a cold pass, and must never trust the sidecar.
			scPath := sidecar.PathFor(path)
			goodSidecar, err := os.ReadFile(scPath)
			if err != nil {
				t.Fatal(err)
			}

			// (a) Source mtime bumped, bytes unchanged: cheap-to-detect
			// staleness — rejected on mtime alone.
			future := time.Now().Add(2 * time.Second)
			if err := os.Chtimes(path, future, future); err != nil {
				t.Fatal(err)
			}
			staleSrc := mustOpen(t, path)
			compareCases(t, "stale mtime", runAllCases(t, roEng, staleSrc), cold)
			if st := staleSrc.SidecarStats(); st.State != "rejected" || st.Hits != 0 || st.LoadError == "" {
				t.Fatalf("mtime-stale sidecar was not rejected: %+v", st)
			}

			// (b) Bit flip in the middle of the sidecar payload.
			flipped := append([]byte(nil), goodSidecar...)
			flipped[len(flipped)/2] ^= 0x40
			if err := os.WriteFile(scPath, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			flipSrc := mustOpen(t, path)
			compareCases(t, "bit-flipped sidecar", runAllCases(t, roEng, flipSrc), cold)
			if st := flipSrc.SidecarStats(); st.State != "rejected" || st.Hits != 0 {
				t.Fatalf("bit-flipped sidecar was not rejected: %+v", st)
			}

			// (c) Truncated sidecar.
			if err := os.WriteFile(scPath, goodSidecar[:len(goodSidecar)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			truncSrc := mustOpen(t, path)
			compareCases(t, "truncated sidecar", runAllCases(t, roEng, truncSrc), cold)
			if st := truncSrc.SidecarStats(); st.State != "rejected" || st.Hits != 0 {
				t.Fatalf("truncated sidecar was not rejected: %+v", st)
			}

			// A readwrite engine facing the corrupt file rebuilds it; a
			// later read-only mapping then loads the rebuilt index.
			rebuildSrc := mustOpen(t, path)
			compareCases(t, "rebuild over corrupt", runAllCases(t, rwEng, rebuildSrc), cold)
			if st := rebuildSrc.SidecarStats(); !st.Built || st.State != "active" {
				t.Fatalf("corrupt sidecar was not rebuilt: %+v", st)
			}
			verifySrc := mustOpen(t, path)
			compareCases(t, "warm after rebuild", runAllCases(t, roEng, verifySrc), cold)
			if st := verifySrc.SidecarStats(); st.State != "active" || st.Hits == 0 {
				t.Fatalf("rebuilt sidecar did not serve a warm pass: %+v", st)
			}
		})
	}
}
