package atgis

// Chaos tests: deterministic fault injection (internal/faultinject)
// driving the fault-containment guarantees end to end. Each test arms a
// hook at an instrumented site, poisons one tenant's passes, and
// asserts the blast radius: the poisoned pass fails with a typed error
// while the pool, the engine and every concurrent tenant keep working,
// and no goroutines, scheduler entries or admission slots leak.
//
// The faultinject registry is process-global, so these tests never run
// in parallel with each other (no t.Parallel) and always disarm via
// t.Cleanup(faultinject.Reset).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atgis/internal/faultinject"
	"atgis/internal/geom"
	"atgis/internal/join"
	"atgis/internal/query"
)

// chaosEngine builds a pooled engine with admission control, closed at
// test end.
func chaosEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine(EngineConfig{Workers: 4, MaxInFlight: 4, TenantQueue: 8})
	t.Cleanup(func() { eng.Close() })
	return eng
}

// waitDrained polls until the engine shows no residual work: zero busy
// workers, no registered scheduler passes, no held admission slots.
func waitDrained(t *testing.T, eng *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Stats()
		ok := st.Pool.Busy == 0
		if st.Scheduler != nil && len(st.Scheduler.Tenants) != 0 {
			ok = false
		}
		if st.Admission != nil && (st.Admission.InFlight != 0 || st.Admission.QueuedTotal != 0) {
			ok = false
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosPanicConfinedToTenant poisons one tenant's block processing
// with an injected panic and proves the failure is confined: the
// poisoned query returns *PassPanicError, a concurrent healthy tenant's
// identical query completes with the correct result, and the pool
// serves the poisoned tenant again once the hook is disarmed.
func TestChaosPanicConfinedToTenant(t *testing.T) {
	ds := genDataset(t, GeoJSON, 2000)
	eng := chaosEngine(t)
	opt := Options{BlockSize: 8 << 10}

	want, err := defaultEngine.Query(context.Background(), ds, aggSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(faultinject.Reset)
	faultinject.Set("pipeline.block", func(label string, index int64) {
		if label == "poison" {
			panic(fmt.Sprintf("chaos: injected block fault (block %d)", index))
		}
	})

	var wg sync.WaitGroup
	var poisonErr, healthyErr error
	var healthyRes *Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, poisonErr = eng.Query(WithTenant(context.Background(), "poison"), ds, aggSpec(), opt)
	}()
	go func() {
		defer wg.Done()
		healthyRes, healthyErr = eng.Query(WithTenant(context.Background(), "healthy"), ds, aggSpec(), opt)
	}()
	wg.Wait()

	var pp *PassPanicError
	if !errors.As(poisonErr, &pp) {
		t.Fatalf("poisoned query: %v, want *PassPanicError", poisonErr)
	}
	if pp.Label != "poison" || pp.Site != "block" {
		t.Fatalf("panic error = label %q site %q, want poison/block", pp.Label, pp.Site)
	}
	if len(pp.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if healthyErr != nil {
		t.Fatalf("healthy tenant failed alongside poisoned one: %v", healthyErr)
	}
	if healthyRes.Res.Count != want.Res.Count || healthyRes.Res.SumArea != want.Res.SumArea {
		t.Fatalf("healthy result %+v diverged from baseline %+v", healthyRes.Res, want.Res)
	}
	waitDrained(t, eng)

	// Disarm: the same tenant is served again — the pool survived.
	faultinject.Reset()
	res, err := eng.Query(WithTenant(context.Background(), "poison"), ds, aggSpec(), opt)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if res.Res.Count != want.Res.Count {
		t.Fatalf("post-recovery count = %d, want %d", res.Res.Count, want.Res.Count)
	}
	waitDrained(t, eng)
}

// TestChaosSimulatedSourceFault injects the simulated mmap fault and
// checks it surfaces as ErrSourceFault / *SourceFaultError, exactly
// like a real SIGBUS would.
func TestChaosSimulatedSourceFault(t *testing.T) {
	ds := genDataset(t, GeoJSON, 500)
	eng := chaosEngine(t)

	t.Cleanup(faultinject.Reset)
	faultinject.Set("pipeline.block", func(label string, index int64) {
		panic(faultinject.SimulatedFault{Site: "pipeline.block"})
	})

	_, err := eng.Query(WithTenant(context.Background(), "a"), ds, aggSpec(), Options{BlockSize: 8 << 10})
	if !errors.Is(err, ErrSourceFault) {
		t.Fatalf("err = %v, want ErrSourceFault", err)
	}
	var sf *SourceFaultError
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want *SourceFaultError", err)
	}
	if sf.Site != "block" {
		t.Fatalf("fault site = %q, want block", sf.Site)
	}
	waitDrained(t, eng)
}

// TestChaosTruncatedMmap truncates a memory-mapped source file under a
// running engine and checks the real SIGBUS surfaces as ErrSourceFault
// for that pass only, while a healthy source registered on the same
// engine keeps serving.
func TestChaosTruncatedMmap(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("real mmap fault semantics require a unix mmap")
	}
	eng := chaosEngine(t)

	// A file several pages long, truncated to under one page: any read
	// past the first page faults.
	path := writeTempGeoJSON(t, 5000)
	doomed, err := OpenMapped(path, AutoDetect)
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()
	if len(doomed.Bytes()) < 1<<16 {
		t.Fatalf("test file too small to straddle pages: %d bytes", len(doomed.Bytes()))
	}
	healthy := genDataset(t, GeoJSON, 2000)

	if err := os.Truncate(path, 512); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var doomedErr, healthyErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, doomedErr = eng.Query(WithTenant(context.Background(), "doomed"), doomed, aggSpec(), Options{BlockSize: 16 << 10})
	}()
	go func() {
		defer wg.Done()
		_, healthyErr = eng.Query(WithTenant(context.Background(), "healthy"), healthy, aggSpec(), Options{BlockSize: 16 << 10})
	}()
	wg.Wait()

	if !errors.Is(doomedErr, ErrSourceFault) {
		t.Fatalf("truncated source: %v, want ErrSourceFault", doomedErr)
	}
	var sf *SourceFaultError
	if !errors.As(doomedErr, &sf) {
		t.Fatalf("truncated source: %v, want *SourceFaultError", doomedErr)
	}
	if sf.Addr == 0 {
		t.Fatal("real fault should carry the faulting address")
	}
	if healthyErr != nil {
		t.Fatalf("healthy source failed alongside the truncated one: %v", healthyErr)
	}
	waitDrained(t, eng)

	// The engine still serves after absorbing a SIGBUS.
	if _, err := eng.Query(context.Background(), healthy, aggSpec(), Options{}); err != nil {
		t.Fatalf("query after fault: %v", err)
	}
}

// TestChaosTimeoutTerminatesPass bounds a query whose every block is
// artificially slow and checks the deadline actually terminates the
// pass — within twice the budget — with context.DeadlineExceeded.
func TestChaosTimeoutTerminatesPass(t *testing.T) {
	ds := genDataset(t, GeoJSON, 4000)
	eng := chaosEngine(t)

	t.Cleanup(faultinject.Reset)
	faultinject.Set("pipeline.block", func(label string, index int64) {
		time.Sleep(30 * time.Millisecond)
	})

	const budget = 250 * time.Millisecond
	ctx, cancel := context.WithTimeout(WithTenant(context.Background(), "slow"), budget)
	defer cancel()
	start := time.Now()
	_, err := eng.Query(ctx, ds, aggSpec(), Options{BlockSize: 4 << 10})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("pass outlived its deadline: ran %v on a %v budget", elapsed, budget)
	}
	waitDrained(t, eng)
}

// TestChaosJoinBatchPanic poisons one tenant's join sweep and checks
// the cell-batch panic fails only that join while a concurrent healthy
// tenant's identical join completes.
func TestChaosJoinBatchPanic(t *testing.T) {
	ds := genDataset(t, GeoJSON, 1500)
	eng := chaosEngine(t)
	spec := JoinSpec{Mask: parityMask, CellSize: 2}

	t.Cleanup(faultinject.Reset)
	faultinject.Set("join.batch", func(label string, index int64) {
		if label == "poison" {
			panic("chaos: injected join fault")
		}
	})

	var wg sync.WaitGroup
	var poisonErr, healthyErr error
	var healthyPairs int
	wg.Add(2)
	go func() {
		defer wg.Done()
		pairs := eng.JoinStream(WithTenant(context.Background(), "poison"), ds, spec, Options{})
		for pairs.Next() {
		}
		_, poisonErr = pairs.Summary()
	}()
	go func() {
		defer wg.Done()
		pairs := eng.JoinStream(WithTenant(context.Background(), "healthy"), ds, spec, Options{})
		for pairs.Next() {
			healthyPairs++
		}
		_, healthyErr = pairs.Summary()
	}()
	wg.Wait()

	var pp *PassPanicError
	if !errors.As(poisonErr, &pp) {
		t.Fatalf("poisoned join: %v, want *PassPanicError", poisonErr)
	}
	if pp.Site != "join-batch" {
		t.Fatalf("panic site = %q, want join-batch", pp.Site)
	}
	if healthyErr != nil {
		t.Fatalf("healthy join failed alongside poisoned one: %v", healthyErr)
	}
	if healthyPairs == 0 {
		t.Fatal("healthy join streamed no pairs")
	}
	waitDrained(t, eng)
}

// TestChaosKernelBatchPanic poisons the batched-refinement kernel site
// (fired only by kernel-refined sweeps) of one tenant's join: the panic
// must fail only that join — contained as the owning cell-batch pass's
// panic — while a concurrent healthy tenant's identical join completes.
// It also proves the default-predicate join actually takes the kernel
// path: the site must fire at all.
func TestChaosKernelBatchPanic(t *testing.T) {
	ds := genDataset(t, GeoJSON, 1500)
	eng := chaosEngine(t)
	spec := JoinSpec{Mask: parityMask, CellSize: 2}

	t.Cleanup(faultinject.Reset)
	var fired atomic.Bool
	faultinject.Set("kernel.batch", func(label string, index int64) {
		fired.Store(true)
		if label == "poison" {
			panic("chaos: injected kernel fault")
		}
	})

	var wg sync.WaitGroup
	var poisonErr, healthyErr error
	var healthyPairs int
	wg.Add(2)
	go func() {
		defer wg.Done()
		pairs := eng.JoinStream(WithTenant(context.Background(), "poison"), ds, spec, Options{})
		for pairs.Next() {
		}
		_, poisonErr = pairs.Summary()
	}()
	go func() {
		defer wg.Done()
		pairs := eng.JoinStream(WithTenant(context.Background(), "healthy"), ds, spec, Options{})
		for pairs.Next() {
			healthyPairs++
		}
		_, healthyErr = pairs.Summary()
	}()
	wg.Wait()

	if !fired.Load() {
		t.Fatal("kernel.batch never fired: default-predicate joins should run kernel-refined")
	}
	var pp *PassPanicError
	if !errors.As(poisonErr, &pp) {
		t.Fatalf("poisoned join: %v, want *PassPanicError", poisonErr)
	}
	if pp.Site != "join-batch" {
		t.Fatalf("panic site = %q, want join-batch", pp.Site)
	}
	if healthyErr != nil {
		t.Fatalf("healthy join failed alongside poisoned one: %v", healthyErr)
	}
	if healthyPairs == 0 {
		t.Fatal("healthy join streamed no pairs")
	}
	waitDrained(t, eng)
}

// parityMask is the even/odd self-join split used across join tests.
func parityMask(f *geom.Feature) uint8 {
	if f.ID%2 == 0 {
		return query.SideA
	}
	return query.SideB
}

// TestChaosNoLeaks runs every fault scenario back to back — injected
// panic, simulated source fault, deadline expiry, mid-stream abandon —
// and asserts nothing leaks: goroutines return to baseline, no worker
// stays busy, no scheduler pass stays registered, no admission slot
// stays held.
func TestChaosNoLeaks(t *testing.T) {
	ds := genDataset(t, GeoJSON, 2000)
	eng := chaosEngine(t)

	// Warm the engine so its steady-state goroutines (pool workers) are
	// part of the baseline.
	if _, err := eng.Query(context.Background(), ds, aggSpec(), Options{}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, eng)
	baseline := runtime.NumGoroutine()

	t.Cleanup(faultinject.Reset)
	for i := 0; i < 3; i++ {
		// Injected panic.
		faultinject.Set("pipeline.block", func(label string, index int64) {
			if label == "poison" {
				panic("chaos: leak-test panic")
			}
		})
		if _, err := eng.Query(WithTenant(context.Background(), "poison"), ds, aggSpec(), Options{BlockSize: 8 << 10}); err == nil {
			t.Fatal("poisoned query succeeded")
		}

		// Simulated source fault.
		faultinject.Set("pipeline.block", func(label string, index int64) {
			if label == "poison" {
				panic(faultinject.SimulatedFault{Site: "pipeline.block"})
			}
		})
		if _, err := eng.Query(WithTenant(context.Background(), "poison"), ds, aggSpec(), Options{BlockSize: 8 << 10}); err == nil {
			t.Fatal("faulted query succeeded")
		}

		// Deadline expiry mid-pass.
		faultinject.Set("pipeline.block", func(label string, index int64) {
			time.Sleep(10 * time.Millisecond)
		})
		ctx, cancel := context.WithTimeout(WithTenant(context.Background(), "slow"), 50*time.Millisecond)
		if _, err := eng.Query(ctx, ds, aggSpec(), Options{BlockSize: 4 << 10}); err == nil {
			t.Fatal("deadline-bounded query succeeded")
		}
		cancel()
		faultinject.Reset()

		// Mid-stream abandon: consume a few records, then Close.
		spec := &query.Spec{Kind: query.Containment, Ref: aggSpec().Ref, Pred: query.PredIntersects, Dist: geom.Haversine}
		pq, err := eng.Prepare(spec, Options{BlockSize: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		res := pq.Stream(WithTenant(context.Background(), "dropper"), ds)
		for j := 0; j < 5 && res.Next(); j++ {
		}
		res.Close()
	}

	waitDrained(t, eng)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // collect finished producer goroutines' stacks promptly
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOrderedJoinRecyclesDeterministically checks the ordered-stream
// pair-buffer recycling: two ordered runs emit the identical pair
// sequence (determinism is the point of OrderWindow — recycled buffers
// must never surface stale pairs), and the sequence matches the
// buffered join's pair set.
func TestOrderedJoinRecyclesDeterministically(t *testing.T) {
	ds := genDataset(t, GeoJSON, 1200)
	eng := chaosEngine(t)
	spec := JoinSpec{Mask: parityMask, CellSize: 2, OrderWindow: 8}

	collect := func() []join.Pair {
		var got []join.Pair
		pairs := eng.JoinStream(WithTenant(context.Background(), "ordered"), ds, spec, Options{})
		for pairs.Next() {
			got = append(got, pairs.Pair())
		}
		if _, err := pairs.Summary(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := collect()
	second := collect()
	if len(first) == 0 {
		t.Fatal("ordered join streamed no pairs")
	}
	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pair %d differs across ordered runs: %+v vs %+v", i, first[i], second[i])
		}
	}

	// Set equality against the buffered (globally deduplicated) join.
	bufSpec := spec
	bufSpec.OrderWindow = 0
	buffered, err := eng.Join(context.Background(), ds, bufSpec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[join.Pair]bool, len(buffered.Pairs))
	for _, p := range buffered.Pairs {
		want[p] = true
	}
	if len(first) != len(want) {
		t.Fatalf("ordered stream emitted %d pairs, buffered join %d", len(first), len(want))
	}
	for _, p := range first {
		if !want[p] {
			t.Fatalf("ordered stream emitted pair %+v absent from buffered join", p)
		}
	}
}
