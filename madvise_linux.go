//go:build linux

package atgis

import "syscall"

func madviseSequential(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}
